// Tests for the scenario engine: spec validation, registry catalog, grid
// expansion, sinks, and the sweep determinism contract (bit-identical
// JSON-Lines at 1 thread and at DefaultThreads()/4 threads).
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "scenario/registry.h"
#include "scenario/scenario.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/thread_pool.h"

namespace cwm {
namespace {

ScenarioSpec TinySpec() {
  const StatusOr<ScenarioSpec> spec =
      GlobalScenarioRegistry().Find("smoke-tiny");
  EXPECT_TRUE(spec.ok());
  return spec.value();
}

TEST(RegistryTest, CatalogHasAtLeastTwelveScenarios) {
  EXPECT_GE(GlobalScenarioRegistry().All().size(), 12u);
}

TEST(RegistryTest, EveryNamedScenarioIsFoundAndValid) {
  const ScenarioRegistry& registry = GlobalScenarioRegistry();
  for (const std::string& name : registry.Names()) {
    const StatusOr<ScenarioSpec> spec = registry.Find(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec.value().name, name);
    const Status valid = spec.value().Validate();
    EXPECT_TRUE(valid.ok()) << name << ": " << valid.ToString();
  }
}

TEST(RegistryTest, NamesAreUnique) {
  const std::vector<std::string> names = GlobalScenarioRegistry().Names();
  const std::set<std::string> unique(names.begin(), names.end());
  EXPECT_EQ(unique.size(), names.size());
}

TEST(RegistryTest, CoversPaperAndBeyondPaperWorkloads) {
  const ScenarioRegistry& registry = GlobalScenarioRegistry();
  for (const char* name :
       {"fig3-runtime", "fig4-welfare", "fig4d-budget-skew", "fig5-supgrd",
        "fig6ab-num-items", "fig6c-blocking", "fig6d-scaling",
        "fig7-real-utility", "table6-adoption", "theory-theorem1",
        "theory-theorem2"}) {
    EXPECT_TRUE(registry.Find(name).ok()) << name;
  }
  int beyond = 0;
  for (const ScenarioSpec& spec : registry.All()) {
    if (spec.paper_ref.empty()) ++beyond;
  }
  EXPECT_GE(beyond, 3);
}

TEST(RegistryTest, EveryConfigSpecBuilds) {
  for (const ScenarioSpec& spec : GlobalScenarioRegistry().All()) {
    for (const ConfigSpec& config : spec.configs) {
      const StatusOr<UtilityConfig> built = config.Build();
      ASSERT_TRUE(built.ok()) << spec.name << "/" << config.Label();
      EXPECT_GE(built.value().num_items(), 1);
    }
  }
}

TEST(RegistryTest, UnknownNameReportsNearMisses) {
  const StatusOr<ScenarioSpec> result =
      GlobalScenarioRegistry().Find("fig4");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), Status::Code::kNotFound);
  EXPECT_NE(result.status().message().find("fig4-welfare"),
            std::string::npos);
}

TEST(RegistryTest, RejectsDuplicatesAndInvalidSpecs) {
  ScenarioRegistry registry;
  ScenarioSpec spec = TinySpec();
  EXPECT_TRUE(registry.Register(spec).ok());
  EXPECT_FALSE(registry.Register(spec).ok());  // duplicate name

  ScenarioSpec invalid = TinySpec();
  invalid.name = "no-algos";
  invalid.algorithms.clear();
  EXPECT_FALSE(registry.Register(invalid).ok());
}

TEST(SpecTest, ValidateCatchesStructuralErrors) {
  ScenarioSpec spec = TinySpec();
  spec.networks[0].family = "no-such-family";
  EXPECT_FALSE(spec.Validate().ok());

  spec = TinySpec();
  spec.budget_points = {{5, 5, 5}};  // C1 has two items
  EXPECT_FALSE(spec.Validate().ok());

  spec = TinySpec();
  spec.algorithms.push_back(AlgoKind::kSupGrd);  // needs a fixed S_P
  EXPECT_FALSE(spec.Validate().ok());

  spec = TinySpec();
  spec.algorithms = {AlgoKind::kBalanceC};  // fine for two items
  EXPECT_TRUE(spec.Validate().ok());
  spec.configs = {{.name = "lastfm"}};  // four items: Balance-C invalid
  EXPECT_FALSE(spec.Validate().ok());
}

TEST(SpecTest, AlgoNamesRoundTrip) {
  for (AlgoKind kind :
       {AlgoKind::kSeqGrd, AlgoKind::kSeqGrdNm, AlgoKind::kMaxGrd,
        AlgoKind::kSupGrd, AlgoKind::kBestOf, AlgoKind::kTcim,
        AlgoKind::kGreedyWm, AlgoKind::kBalanceC, AlgoKind::kRoundRobin,
        AlgoKind::kSnake, AlgoKind::kBlockUtility, AlgoKind::kHighDegreeRank,
        AlgoKind::kDegreeDiscountRank, AlgoKind::kPageRankRank}) {
    const auto parsed = ParseAlgo(AlgoName(kind));
    ASSERT_TRUE(parsed.has_value()) << AlgoName(kind);
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(ParseAlgo("NoSuchAlgo").has_value());
}

TEST(GridTest, ExpansionCountsMatchAxes) {
  const ScenarioRegistry& registry = GlobalScenarioRegistry();

  // fig3: 4 networks x 1 config x 3 budgets x 1 seed x 6 algorithms.
  const ScenarioSpec fig3 = registry.Find("fig3-runtime").value();
  EXPECT_EQ(ExpandGrid(fig3, false).size(), 4u * 1 * 3 * 1 * 6);

  // smoke-tiny: 1 x 1 x 2 budgets x 2 seeds x 6 algorithms.
  EXPECT_EQ(ExpandGrid(TinySpec(), false).size(), 1u * 1 * 2 * 2 * 6);

  // table6: 2 networks x 2 configs x 2 budgets x 1 seed x 3 allocators.
  const ScenarioSpec t6 = registry.Find("table6-adoption").value();
  EXPECT_EQ(ExpandGrid(t6, false).size(), 2u * 2 * 2 * 1 * 3);
}

TEST(GridTest, IndicesAreStableAndGatingDoesNotChangeRowCount) {
  const ScenarioSpec fig3 =
      GlobalScenarioRegistry().Find("fig3-runtime").value();
  const std::vector<ScenarioTask> gated = ExpandGrid(fig3, false);
  const std::vector<ScenarioTask> open = ExpandGrid(fig3, true);
  ASSERT_EQ(gated.size(), open.size());
  std::size_t gated_count = 0;
  for (std::size_t i = 0; i < gated.size(); ++i) {
    EXPECT_EQ(gated[i].index, i);
    EXPECT_EQ(gated[i].algo, open[i].algo);
    EXPECT_FALSE(open[i].gated);
    if (gated[i].gated) {
      ++gated_count;
      EXPECT_TRUE(IsSlowAlgo(gated[i].algo));
    }
  }
  // fig3 gates on the first network (the paper runs greedyWM/Balance-C on
  // NetHEPT at every budget): two slow algorithms gated on the other
  // three networks' three budget points each.
  EXPECT_EQ(gated_count, 2u * 3 * 3);
}

TEST(GridTest, GateWindowsFollowTheSpec) {
  // fig4 gates on the first budget point: greedyWM/Balance-C run at
  // budget 10 for every configuration (the old driver's protocol).
  const ScenarioSpec fig4 =
      GlobalScenarioRegistry().Find("fig4-welfare").value();
  ASSERT_EQ(fig4.slow_gate, SlowGate::kFirstBudget);
  std::size_t gated = 0, open_slow = 0;
  for (const ScenarioTask& task : ExpandGrid(fig4, false)) {
    if (!IsSlowAlgo(task.algo)) continue;
    if (task.gated) {
      ++gated;
      EXPECT_NE(task.budget_index, 0u);
    } else {
      ++open_slow;
      EXPECT_EQ(task.budget_index, 0u);
    }
  }
  EXPECT_EQ(open_slow, 2u * 3);  // 2 slow algos x 3 configs at budget 10
  EXPECT_EQ(gated, 2u * 3 * 2);  // gated at budgets 30 and 50
}

TEST(NetworkSpecTest, BuildsTinyGeneratorFamilies) {
  NetworkSpec net;
  net.family = "erdos-renyi";
  net.num_nodes = 200;
  net.degree = 4;
  const StatusOr<Graph> graph = net.Build();
  ASSERT_TRUE(graph.ok());
  EXPECT_EQ(graph.value().num_nodes(), 200u);
  // The generator draws 4 * 200 distinct directed edges; a handful of
  // duplicate draws may be rejected, so allow a small shortfall.
  EXPECT_GE(graph.value().num_edges(), 700u);
  EXPECT_LE(graph.value().num_edges(), 800u);

  NetworkSpec bad;
  bad.family = "edge-list";  // no path
  EXPECT_FALSE(bad.Build().ok());

  // Scale multiplies generator node counts.
  const StatusOr<Graph> scaled = net.Build(/*scale=*/0.5);
  ASSERT_TRUE(scaled.ok());
  EXPECT_EQ(scaled.value().num_nodes(), 100u);
}

TEST(SinkTest, JsonEscapingAndDoubles) {
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
  EXPECT_EQ(JsonDouble(0.0), "0");
  EXPECT_EQ(JsonDouble(2.5), "2.5");
}

TEST(SweepTest, TinySweepProducesOneRowPerGridCell) {
  const ScenarioSpec spec = TinySpec();
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> result = RunSweep(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().rows.size(), ExpandGrid(spec, false).size());
  for (const TaskResult& row : result.value().rows) {
    EXPECT_EQ(row.scenario, "smoke-tiny");
    EXPECT_FALSE(row.skipped) << row.skip_reason;
    ASSERT_EQ(row.budgets.size(), 2u);  // size-1 point broadcast to 2 items
    EXPECT_GT(row.welfare, 0.0) << row.algorithm;
    EXPECT_EQ(row.graph_nodes, 300u);
    EXPECT_EQ(row.adopters_per_item.size(), 2u);
  }
}

TEST(SweepTest, GoldenDeterminismAcrossThreadCounts) {
  const ScenarioSpec spec = TinySpec();

  SweepOptions single;
  single.num_threads = 1;
  const StatusOr<SweepResult> a = RunSweep(spec, single);
  ASSERT_TRUE(a.ok());

  SweepOptions multi;
  multi.num_threads = std::max(4u, DefaultThreads());
  const StatusOr<SweepResult> b = RunSweep(spec, multi);
  ASSERT_TRUE(b.ok());

  std::ostringstream ja, jb, ca, cb;
  WriteJsonLines(a.value(), ja);
  WriteJsonLines(b.value(), jb);
  WriteCsv(a.value(), ca);
  WriteCsv(b.value(), cb);
  EXPECT_EQ(ja.str(), jb.str());  // byte-identical artifacts
  EXPECT_EQ(ca.str(), cb.str());
  EXPECT_GT(ja.str().size(), 0u);
}

TEST(SweepTest, SeedChangesResults) {
  ScenarioSpec spec = TinySpec();
  spec.seeds = {1};
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> a = RunSweep(spec, options);
  ASSERT_TRUE(a.ok());
  spec.seeds = {99};
  const StatusOr<SweepResult> b = RunSweep(spec, options);
  ASSERT_TRUE(b.ok());
  std::ostringstream ja, jb;
  WriteJsonLines(a.value(), ja);
  WriteJsonLines(b.value(), jb);
  EXPECT_NE(ja.str(), jb.str());
}

TEST(SweepTest, EvaluationWorldsAreSharedWithinACell) {
  // All algorithms of one cell must be scored on the same sampled worlds:
  // two algorithms that produce the same allocation get the same welfare.
  ScenarioSpec spec = TinySpec();
  spec.algorithms = {AlgoKind::kSeqGrdNm, AlgoKind::kBlockUtility};
  spec.budget_points = {{5}};
  spec.seeds = {7};
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> result = RunSweep(spec, options);
  ASSERT_TRUE(result.ok());
  // Not asserting equality of welfare (allocations differ); asserting the
  // shared-world seed derivation ran: both rows evaluated, same budgets.
  ASSERT_EQ(result.value().rows.size(), 2u);
  EXPECT_EQ(result.value().rows[0].budgets, result.value().rows[1].budgets);
}

TEST(SweepTest, Theorem2GadgetScenarioRuns) {
  const ScenarioSpec spec =
      GlobalScenarioRegistry().Find("theory-theorem2").value();
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> result = RunSweep(spec, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const TaskResult& row : result.value().rows) {
    EXPECT_FALSE(row.skipped) << row.algorithm << ": " << row.skip_reason;
    // The fixed allocation alone already yields positive welfare; any
    // i1 placement on the YES instance should keep it positive.
    EXPECT_GT(row.welfare, 0.0) << row.algorithm;
  }
}

TEST(SweepTest, JsonRecordsRoundTripStructure) {
  const ScenarioSpec spec = TinySpec();
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> result = RunSweep(spec, options);
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  WriteJsonLines(result.value(), os);
  const std::string text = os.str();
  // One header + one line per row, each a JSON object.
  std::size_t lines = 0, pos = 0;
  while ((pos = text.find('\n', pos)) != std::string::npos) {
    ++lines;
    ++pos;
  }
  EXPECT_EQ(lines, 1 + result.value().rows.size());
  EXPECT_EQ(text.rfind("{\"type\":\"spec\"", 0), 0u);
  EXPECT_NE(text.find("{\"type\":\"result\""), std::string::npos);
  // Timing is excluded by default so artifacts are reproducible.
  EXPECT_EQ(text.find("\"seconds\""), std::string::npos);
  std::ostringstream timed;
  WriteJsonLines(result.value(), timed, {.include_timing = true});
  EXPECT_NE(timed.str().find("\"seconds\""), std::string::npos);
}

}  // namespace
}  // namespace cwm
