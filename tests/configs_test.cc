// Tests pinning the paper's utility configurations to their published
// numbers: Table 3 (C1-C4), C5/C6 superior-item variants, Table 4, the
// Last.fm reconstruction of Table 5, and the Theorem 1 / Theorem 2 (Table
// 1) theory configurations.
#include <gtest/gtest.h>

#include <cmath>

#include "exp/configs.h"
#include "exp/networks.h"
#include "graph/edge_prob.h"

namespace cwm {
namespace {

TEST(ConfigC1Test, TableThreeNumbers) {
  const UtilityConfig c = MakeConfigC1();
  EXPECT_EQ(c.num_items(), 2);
  EXPECT_DOUBLE_EQ(c.DetUtility(0x1), 1.0);
  EXPECT_NEAR(c.DetUtility(0x2), 0.9, 1e-12);
  EXPECT_NEAR(c.DetUtility(0x3), -2.1, 1e-12);
  EXPECT_EQ(c.Noise(0).kind(), NoiseDistribution::Kind::kNormal);
  EXPECT_DOUBLE_EQ(c.Noise(0).sigma(), 1.0);
}

TEST(ConfigC2Test, HighUtilityGap) {
  const UtilityConfig c = MakeConfigC2();
  EXPECT_DOUBLE_EQ(c.DetUtility(0x1), 1.0);
  EXPECT_NEAR(c.DetUtility(0x2), 0.1, 1e-12);
  // "i's deterministic utility is ... 10 times higher than that of j."
  EXPECT_NEAR(c.DetUtility(0x1) / c.DetUtility(0x2), 10.0, 1e-9);
  EXPECT_NEAR(c.DetUtility(0x3), -2.9, 1e-12);
}

TEST(ConfigC3Test, SoftCompetition) {
  const UtilityConfig c = MakeConfigC3();
  EXPECT_NEAR(c.DetUtility(0x3), 1.7, 1e-12);
  // Bundle beats both singles but is below their sum: partial competition.
  EXPECT_GT(c.DetUtility(0x3), c.DetUtility(0x1));
  EXPECT_GT(c.DetUtility(0x3), c.DetUtility(0x2));
  EXPECT_LT(c.DetUtility(0x3), c.DetUtility(0x1) + c.DetUtility(0x2));
}

TEST(ConfigC5C6Test, SuperiorItemExists) {
  const UtilityConfig c5 = MakeConfigC5();
  ASSERT_TRUE(c5.SuperiorItem().has_value());
  EXPECT_EQ(*c5.SuperiorItem(), 0);
  EXPECT_TRUE(c5.IsPureCompetition());

  const UtilityConfig c6 = MakeConfigC6();
  ASSERT_TRUE(c6.SuperiorItem().has_value());
  EXPECT_EQ(*c6.SuperiorItem(), 0);
  EXPECT_TRUE(c6.IsPureCompetition());
}

TEST(ConfigC5C6Test, ClampedNoiseKeepsUtilityOrder) {
  const UtilityConfig c = MakeConfigC5();
  // Worst case for i must beat best case for j.
  const double i_low = c.DetUtility(0x1) + c.Noise(0).MinSupport();
  const double j_high = c.DetUtility(0x2) + c.Noise(1).MaxSupport();
  EXPECT_GT(i_low, j_high);
}

TEST(ConfigPurityTest, C1C2PureC3Soft) {
  // Normal noise is unbounded, so the formal pure-competition check fails
  // for C1/C2; their deterministic bundles are still strictly dominated.
  const UtilityConfig c1 = MakeConfigC1();
  EXPECT_LT(c1.DetUtility(0x3), 0.0);
  const UtilityConfig c3 = MakeConfigC3();
  EXPECT_GT(c3.DetUtility(0x3), 0.0);
}

TEST(ThreeItemConfigTest, TableFourNumbers) {
  const UtilityConfig c = MakeThreeItemConfig();
  EXPECT_EQ(c.num_items(), 3);
  EXPECT_NEAR(c.DetUtility(SingletonSet(0)), 2.0, 1e-9);
  EXPECT_NEAR(c.DetUtility(SingletonSet(1)), 0.11, 1e-9);
  EXPECT_NEAR(c.DetUtility(SingletonSet(2)), 0.1, 1e-9);
  EXPECT_NEAR(c.DetUtility(0x5), 2.1, 1e-9);  // {i,k}: soft competition
  EXPECT_LT(c.DetUtility(0x3), 0.0);          // {i,j}
  EXPECT_LT(c.DetUtility(0x6), 0.0);          // {j,k}
  EXPECT_LT(c.DetUtility(0x7), 0.0);          // {i,j,k}
}

TEST(UniformPureCompetitionTest, UnitUtilitiesAllSizes) {
  for (int m = 1; m <= 5; ++m) {
    const UtilityConfig c = MakeUniformPureCompetition(m);
    EXPECT_EQ(c.num_items(), m);
    for (ItemId i = 0; i < m; ++i) {
      EXPECT_DOUBLE_EQ(c.DetUtility(SingletonSet(i)), 1.0);
      EXPECT_DOUBLE_EQ(c.ExpectedTruncatedUtility(i), 1.0);
    }
    EXPECT_TRUE(c.IsPureCompetition());
    EXPECT_DOUBLE_EQ(c.UMin(), 1.0);
    EXPECT_DOUBLE_EQ(c.UMax(), 1.0);
  }
}

TEST(LastFmConfigTest, TableFiveUtilities) {
  const UtilityConfig c = MakeLastFmConfig();
  EXPECT_EQ(c.num_items(), 4);
  // UD column of Table 5: 7.0, 6.8, 5.0, 4.7 (to one decimal).
  EXPECT_NEAR(c.DetUtility(SingletonSet(0)), 7.0, 0.05);   // indie
  EXPECT_NEAR(c.DetUtility(SingletonSet(1)), 6.8, 0.05);   // rock
  EXPECT_NEAR(c.DetUtility(SingletonSet(2)), 5.0, 0.05);   // industrial
  EXPECT_NEAR(c.DetUtility(SingletonSet(3)), 4.7, 0.05);   // prog metal
}

TEST(LastFmConfigTest, ExactReconstructionFormula) {
  const UtilityConfig c = MakeLastFmConfig();
  EXPECT_NEAR(c.DetUtility(SingletonSet(0)), std::log(10000 * 0.107), 1e-9);
  EXPECT_NEAR(c.DetUtility(SingletonSet(3)), std::log(10000 * 0.011), 1e-9);
}

TEST(LastFmConfigTest, PureCompetitionIncludingUpgrades) {
  const UtilityConfig c = MakeLastFmConfig();
  EXPECT_TRUE(c.IsPureCompetition());
  // The crucial upgrade trap: a node holding progressive metal (4.7) must
  // not want to add indie: U({indie, prog}) < U({prog}).
  EXPECT_LT(c.DetUtility(0x9), c.DetUtility(0x8));
}

TEST(LastFmConfigTest, UtilityOrderMatchesTable) {
  const UtilityConfig c = MakeLastFmConfig();
  const auto order = c.ItemsByTruncatedUtilityDesc();
  EXPECT_EQ(order, (std::vector<ItemId>{0, 1, 2, 3}));
}

TEST(Theorem1ConfigTest, ProofArithmetic) {
  const UtilityConfig c = MakeTheorem1Config();
  EXPECT_DOUBLE_EQ(c.DetUtility(0x1), 4.0);   // i1
  EXPECT_DOUBLE_EQ(c.DetUtility(0x2), 3.0);   // i2
  EXPECT_DOUBLE_EQ(c.DetUtility(0x4), 3.5);   // i3
  EXPECT_DOUBLE_EQ(c.DetUtility(0x5), 4.5);   // {i1,i3}
  // A node holding i2 must not benefit from adding i1.
  EXPECT_LE(c.DetUtility(0x3), c.DetUtility(0x2));
}

TEST(Theorem2ConfigTest, TableOneVerbatim) {
  const UtilityConfig c = MakeTheorem2Config();
  EXPECT_NEAR(c.DetUtility(0x1), 5.1, 1e-9);    // i1
  EXPECT_NEAR(c.DetUtility(0x2), 5.0, 1e-9);    // i2
  EXPECT_NEAR(c.DetUtility(0x4), 5.0, 1e-9);    // i3
  EXPECT_NEAR(c.DetUtility(0x8), 100.0, 1e-9);  // i4
  EXPECT_NEAR(c.DetUtility(0x9), 105.1, 1e-9);  // {i1,i4}
  EXPECT_NEAR(c.DetUtility(0x6), 10.0, 1e-9);   // {i2,i3}
  EXPECT_NEAR(c.DetUtility(0xE), 9.5, 1e-9);    // {i2,i3,i4}
  EXPECT_NEAR(c.DetUtility(0x7), 4.6, 1e-9);    // {i1,i2,i3}
  EXPECT_NEAR(c.DetUtility(0xF), 3.6, 1e-9);    // all
}

TEST(Theorem2ConfigTest, GapConstraintsHold) {
  const UtilityConfig c = MakeTheorem2Config();
  const double u_i2i3 = c.DetUtility(0x6);
  const double u_i1i4 = c.DetUtility(0x9);
  const double cc = 0.4;
  // The reduction requires c * U(i4) > U({i2,i3}) and
  // U({i2,i3}) < c/4 * U({i1,i4}).
  EXPECT_GT(cc * c.DetUtility(0x8), u_i2i3);
  EXPECT_LT(u_i2i3, cc / 4.0 * u_i1i4);
  // And the blocking structure: i1 beats i2 and i3 singly, loses to the
  // {i2,i3} bundle.
  EXPECT_GT(c.DetUtility(0x1), c.DetUtility(0x2));
  EXPECT_GT(u_i2i3, c.DetUtility(0x1));
}

TEST(NetworkCatalogTest, TableTwoShapes) {
  const Graph nethept = NetHeptLike(3);
  EXPECT_EQ(nethept.num_nodes(), 15200u);
  EXPECT_NEAR(nethept.AverageDegree(), 4.1, 0.6);

  const Graph book = DoubanBookLike(3);
  EXPECT_EQ(book.num_nodes(), 23300u);
  EXPECT_NEAR(book.AverageDegree(), 6.0, 1.0);

  const Graph movie = DoubanMovieLike(3);
  EXPECT_EQ(movie.num_nodes(), 34900u);
  EXPECT_NEAR(movie.AverageDegree(), 7.9, 1.2);
}

TEST(NetworkCatalogTest, ScaledGiantsKeepDensity) {
  const Graph orkut = OrkutLike(2000, 5);
  EXPECT_EQ(orkut.num_nodes(), 2000u);
  EXPECT_NEAR(orkut.AverageDegree(), 76.0, 8.0);

  const Graph twitter = TwitterLike(2000, 5);
  EXPECT_EQ(twitter.num_nodes(), 2000u);
  EXPECT_NEAR(twitter.AverageDegree(), 35.0, 5.0);
}

TEST(NetworkCatalogTest, StatsRowFormat) {
  const Graph g = NetHeptLike(7);
  const std::string row = NetworkStatsRow("nethept-like", g);
  EXPECT_NE(row.find("nethept-like"), std::string::npos);
  EXPECT_NE(row.find("15200"), std::string::npos);
}

}  // namespace
}  // namespace cwm
