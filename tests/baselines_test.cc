// Tests for the baselines: greedyWM, TCIM-style, Balance-C, and the
// positional allocators (block / round-robin / snake).
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "baselines/balance_c.h"
#include "baselines/greedy_wm.h"
#include "baselines/simple_alloc.h"
#include "baselines/tcim.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simulate/estimator.h"

namespace cwm {
namespace {

AlgoParams FastParams(uint64_t seed = 3) {
  AlgoParams p;
  p.imm = {.epsilon = 0.5, .ell = 1.0, .seed = seed};
  p.estimator = {.num_worlds = 200, .seed = seed + 1};
  return p;
}

TEST(TopOutDegreeNodesTest, OrdersByDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(2, 0, 1.0);
  b.AddEdge(2, 1, 1.0);
  b.AddEdge(2, 3, 1.0);
  b.AddEdge(3, 0, 1.0);
  b.AddEdge(3, 1, 1.0);
  const Graph g = std::move(b).Build();
  const auto top = TopOutDegreeNodes(g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 2u);  // degree 3
  EXPECT_EQ(top[1], 3u);  // degree 2
}

TEST(TopOutDegreeNodesTest, PoolZeroReturnsAll) {
  const Graph g = BarabasiAlbert(50, 2, 3);
  EXPECT_EQ(TopOutDegreeNodes(g, 0).size(), 50u);
  EXPECT_EQ(TopOutDegreeNodes(g, 100).size(), 50u);
}

TEST(GreedyWmTest, RespectsBudgets) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(150, 2, 5));
  const UtilityConfig c = MakeConfigC1();
  const BudgetVector budgets{3, 2};
  const Allocation alloc = GreedyWm(g, c, Allocation(2), {0, 1}, budgets,
                                    FastParams(), {.candidate_pool = 30});
  EXPECT_TRUE(alloc.RespectsBudgets(budgets));
  EXPECT_EQ(alloc.TotalPairs(), 5u);
}

TEST(GreedyWmTest, FindsObviousBestSeedOnStar) {
  // Star center with 30 leaves: first pick must be (center, item i).
  GraphBuilder b(31);
  for (NodeId leaf = 1; leaf < 31; ++leaf) b.AddEdge(0, leaf, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 3.0).SetItemValue(1, 2.0);
  cb.SetItemPrice(0, 1.0).SetItemPrice(1, 1.0);  // U(i)=2, U(j)=1, pure
  const UtilityConfig c = std::move(cb).Build().value();
  const Allocation alloc = GreedyWm(g, c, Allocation(2), {0, 1}, {1, 1},
                                    FastParams(7), {.candidate_pool = 10});
  ASSERT_EQ(alloc.SeedsOf(0).size(), 1u);
  EXPECT_EQ(alloc.SeedsOf(0)[0], 0u);
}

TEST(GreedyWmTest, WelfareCompetitiveWithSeqGrdOnSmallGraph) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(120, 2, 9));
  const UtilityConfig c = MakeConfigC3();
  const Allocation alloc = GreedyWm(g, c, Allocation(2), {0, 1}, {2, 2},
                                    FastParams(11), {.candidate_pool = 25});
  WelfareEstimator est(g, c, {.num_worlds = 1500, .seed = 13});
  EXPECT_GT(est.Welfare(alloc), 0.0);
}

TEST(TcimTest, RespectsBudgetsAndStacksSameSeeds) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 15));
  const UtilityConfig c = MakeConfigC1();
  const BudgetVector budgets{4, 4};
  const Allocation alloc =
      Tcim(g, c, Allocation(2), {0, 1}, budgets, FastParams(17));
  EXPECT_TRUE(alloc.RespectsBudgets(budgets));
  EXPECT_EQ(alloc.SeedsOf(0).size(), 4u);
  EXPECT_EQ(alloc.SeedsOf(1).size(), 4u);
  // TCIM contests the same top seeds for every item (§6.2.2 observation).
  EXPECT_EQ(alloc.SeedsOf(0), alloc.SeedsOf(1));
}

TEST(TcimTest, UnevenBudgetsSharePrefix) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 19));
  const UtilityConfig c = MakeConfigC1();
  const Allocation alloc =
      Tcim(g, c, Allocation(2), {0, 1}, {2, 5}, FastParams(19));
  ASSERT_EQ(alloc.SeedsOf(0).size(), 2u);
  ASSERT_EQ(alloc.SeedsOf(1).size(), 5u);
  // The smaller budget takes a prefix of the larger one's seed list.
  EXPECT_EQ(alloc.SeedsOf(0)[0], alloc.SeedsOf(1)[0]);
  EXPECT_EQ(alloc.SeedsOf(0)[1], alloc.SeedsOf(1)[1]);
}

TEST(TcimTest, SharedSeedsCostWelfareUnderPureCompetition) {
  // Two disjoint stars with two purely competing items: stacking both
  // items on one hub wastes a budget; placing one item per hub wins.
  GraphBuilder b(42);
  for (NodeId leaf = 1; leaf <= 20; ++leaf) b.AddEdge(0, leaf, 1.0);
  for (NodeId leaf = 22; leaf <= 41; ++leaf) b.AddEdge(21, leaf, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 3.0).SetItemValue(1, 2.9);
  cb.SetItemPrice(0, 1.0).SetItemPrice(1, 1.0);  // pure competition
  const UtilityConfig c = std::move(cb).Build().value();
  const Allocation tcim =
      Tcim(g, c, Allocation(2), {0, 1}, {1, 1}, FastParams(23));
  EXPECT_EQ(tcim.SeedsOf(0), tcim.SeedsOf(1));
  WelfareEstimator est(g, c, {.num_worlds = 64, .seed = 29});
  Allocation disjoint(2);
  disjoint.Add(0, 0);
  disjoint.Add(21, 1);
  // Disjoint hubs: 21*2.0 + 21*1.9; stacked: one star only.
  EXPECT_GT(est.Welfare(disjoint), est.Welfare(tcim));
}

TEST(BalanceCTest, RequiresTwoItems) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(100, 2, 21));
  const UtilityConfig c = MakeThreeItemConfig();
  EXPECT_DEATH(BalanceC(g, c, Allocation(3), {0, 1, 2}, {1, 1, 1},
                        FastParams()),
               "two items");
}

TEST(BalanceCTest, RespectsBudgets) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(120, 2, 23));
  const UtilityConfig c = MakeConfigC3();
  const BudgetVector budgets{2, 2};
  const Allocation alloc = BalanceC(g, c, Allocation(2), {0, 1}, budgets,
                                    FastParams(25), {.candidate_pool = 20});
  EXPECT_TRUE(alloc.RespectsBudgets(budgets));
  EXPECT_EQ(alloc.TotalPairs(), 4u);
}

TEST(BalanceCTest, CoSeedsForBalanceUnderSoftCompetition) {
  // Under soft competition (both items adoptable), Balance-C prefers
  // seeding both items at the same influential node: everyone it reaches
  // sees both.
  GraphBuilder b(20);
  for (NodeId leaf = 1; leaf < 20; ++leaf) b.AddEdge(0, leaf, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC3();
  const Allocation alloc = BalanceC(g, c, Allocation(2), {0, 1}, {1, 1},
                                    FastParams(27), {.candidate_pool = 6});
  ASSERT_EQ(alloc.SeedsOf(0).size(), 1u);
  ASSERT_EQ(alloc.SeedsOf(1).size(), 1u);
  EXPECT_EQ(alloc.SeedsOf(0)[0], alloc.SeedsOf(1)[0]);
}

TEST(SimpleAllocTest, BlockPattern) {
  const std::vector<NodeId> seeds{10, 11, 12, 13, 14, 15};
  const Allocation a = BlockAllocate(2, seeds, {0, 1}, {3, 3});
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{10, 11, 12}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{13, 14, 15}));
}

TEST(SimpleAllocTest, RoundRobinPattern) {
  const std::vector<NodeId> seeds{10, 11, 12, 13};
  const Allocation a = RoundRobinAllocate(2, seeds, {0, 1}, {2, 2});
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{10, 12}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{11, 13}));
}

TEST(SimpleAllocTest, SnakePattern) {
  // Paper's example: s1:i, s2:j, s3:j, s4:i.
  const std::vector<NodeId> seeds{1, 2, 3, 4};
  const Allocation a = SnakeAllocate(2, seeds, {0, 1}, {2, 2});
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{2, 3}));
}

TEST(SimpleAllocTest, RoundRobinSkipsExhaustedBudgets) {
  const std::vector<NodeId> seeds{1, 2, 3, 4, 5};
  const Allocation a = RoundRobinAllocate(2, seeds, {0, 1}, {1, 4});
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{1}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{2, 3, 4, 5}));
}

TEST(SimpleAllocTest, SnakeUnevenBudgets) {
  const std::vector<NodeId> seeds{1, 2, 3, 4, 5};
  const Allocation a = SnakeAllocate(2, seeds, {0, 1}, {3, 2});
  // pass 1 fwd: 1->i, 2->j; pass 2 rev: 3->j, 4->i; pass 3 fwd: 5->i.
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{1, 4, 5}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{2, 3}));
}

TEST(SimpleAllocTest, ThreeItemsRoundRobin) {
  const std::vector<NodeId> seeds{1, 2, 3, 4, 5, 6};
  const Allocation a = RoundRobinAllocate(3, seeds, {0, 1, 2}, {2, 2, 2});
  EXPECT_EQ(a.SeedsOf(0), (std::vector<NodeId>{1, 4}));
  EXPECT_EQ(a.SeedsOf(1), (std::vector<NodeId>{2, 5}));
  EXPECT_EQ(a.SeedsOf(2), (std::vector<NodeId>{3, 6}));
}

}  // namespace
}  // namespace cwm
