// Tests for the deterministic parallel RR-set pipeline: bit-identical
// collections and seed sets across thread counts, CSR inverted-index
// equivalence against a per-node reference, sharded-merge bookkeeping
// (including empty RR sets), and the worker-indexed ParallelFor variant.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <memory>
#include <vector>

#include "algo/params.h"
#include "algo/sup_grd.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "model/allocation.h"
#include "rrset/imm.h"
#include "rrset/prima_plus.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_pipeline.h"
#include "rrset/rr_sampler.h"
#include "support/thread_pool.h"

namespace cwm {
namespace {

const Graph& TestGraph() {
  static const Graph g = WithWeightedCascade(BarabasiAlbert(300, 3, 91));
  return g;
}

RrSourceFactory StandardSource(const Graph& g) {
  return [&g]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(g);
    return [sampler](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleStandard(rng, out);
      return 1.0;
    };
  };
}

/// Full structural equality of two collections: sizes, per-set members
/// and weights, totals, and the inverted index.
void ExpectSameCollection(const RrCollection& a, const RrCollection& b) {
  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.TotalMembers(), b.TotalMembers());
  EXPECT_EQ(a.TotalWeight(), b.TotalWeight());  // bit-identical, not near
  for (uint32_t id = 0; id < a.size(); ++id) {
    const auto ma = a.Members(id);
    const auto mb = b.Members(id);
    ASSERT_EQ(ma.size(), mb.size()) << "set " << id;
    EXPECT_TRUE(std::equal(ma.begin(), ma.end(), mb.begin()))
        << "set " << id;
    EXPECT_EQ(a.Weight(id), b.Weight(id)) << "set " << id;
  }
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    const auto ia = a.RrSetsOf(v);
    const auto ib = b.RrSetsOf(v);
    ASSERT_EQ(ia.size(), ib.size()) << "node " << v;
    EXPECT_TRUE(std::equal(ia.begin(), ia.end(), ib.begin()))
        << "node " << v;
  }
}

TEST(RrPipelineTest, CollectionBitIdenticalAcrossThreadCounts) {
  const Graph& g = TestGraph();
  // Two epochs (grow, then extend past several chunk boundaries) followed
  // by a fresh pass after Clear — the driver's exact usage pattern.
  auto run = [&](unsigned threads) {
    RrPipeline pipeline(StandardSource(g), /*seed=*/42, threads);
    auto rr = std::make_unique<RrCollection>(g.num_nodes());
    pipeline.ExtendTo(rr.get(), 300);
    pipeline.ExtendTo(rr.get(), 1500);
    rr->Clear();
    pipeline.ExtendTo(rr.get(), 700);
    return rr;
  };
  const auto rr1 = run(1);
  for (unsigned threads : {2u, 7u}) {
    const auto rrt = run(threads);
    ExpectSameCollection(*rr1, *rrt);
  }
}

TEST(RrPipelineTest, FreshPassUsesNewSampleStreams) {
  const Graph& g = TestGraph();
  RrPipeline pipeline(StandardSource(g), /*seed=*/7, /*num_threads=*/2);
  RrCollection rr(g.num_nodes());
  pipeline.ExtendTo(&rr, 400);
  std::vector<NodeId> first_roots;
  for (uint32_t id = 0; id < 400; ++id) {
    first_roots.push_back(rr.Members(id).front());
  }
  rr.Clear();
  pipeline.ExtendTo(&rr, 400);
  EXPECT_EQ(pipeline.samples_generated(), 800u);
  std::vector<NodeId> second_roots;
  for (uint32_t id = 0; id < 400; ++id) {
    second_roots.push_back(rr.Members(id).front());
  }
  EXPECT_NE(first_roots, second_roots);
}

TEST(RrPipelineTest, ThreadCountZeroMeansHardwareAndStaysDeterministic) {
  const Graph& g = TestGraph();
  RrPipeline auto_pipeline(StandardSource(g), 11, /*num_threads=*/0);
  EXPECT_GE(auto_pipeline.num_threads(), 1u);
  RrCollection rr_auto(g.num_nodes());
  auto_pipeline.ExtendTo(&rr_auto, 600);
  RrPipeline one(StandardSource(g), 11, 1);
  RrCollection rr_one(g.num_nodes());
  one.ExtendTo(&rr_one, 600);
  ExpectSameCollection(rr_one, rr_auto);
}

TEST(RrCollectionTest, CsrIndexMatchesPerNodeReference) {
  Rng rng(5);
  RrCollection rr(40);
  std::vector<std::vector<uint32_t>> reference(40);
  for (int id = 0; id < 200; ++id) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < 40; ++v) {
      if (rng.NextBernoulli(0.15)) members.push_back(v);
    }
    const double w = rng.NextDouble();
    const uint32_t got = rr.Add(members, w);
    ASSERT_EQ(got, static_cast<uint32_t>(id));
    for (NodeId v : members) {
      reference[v].push_back(static_cast<uint32_t>(id));
    }
    // Interleave reads with appends: the lazy rebuild must always reflect
    // every set added so far.
    if (id % 67 == 0) {
      const auto span = rr.RrSetsOf(id % 40);
      EXPECT_EQ(span.size(), reference[id % 40].size());
    }
  }
  for (NodeId v = 0; v < 40; ++v) {
    const auto span = rr.RrSetsOf(v);
    ASSERT_EQ(span.size(), reference[v].size()) << "node " << v;
    EXPECT_TRUE(
        std::equal(span.begin(), span.end(), reference[v].begin()))
        << "node " << v;
    EXPECT_TRUE(std::is_sorted(span.begin(), span.end()));
  }
}

TEST(RrCollectionTest, MergeMatchesSequentialAdd) {
  Rng rng(9);
  std::vector<std::vector<NodeId>> sets;
  std::vector<double> weights;
  for (int id = 0; id < 120; ++id) {
    std::vector<NodeId> members;
    for (NodeId v = 0; v < 25; ++v) {
      if (rng.NextBernoulli(0.2)) members.push_back(v);
    }
    sets.push_back(members);
    weights.push_back(rng.NextDouble());
  }

  RrCollection by_add(25);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    by_add.Add(sets[i], weights[i]);
  }

  RrCollection by_merge(25);
  std::vector<RrShard> shards(4);
  for (std::size_t i = 0; i < sets.size(); ++i) {
    shards[i / 30].Add(sets[i], weights[i]);
  }
  for (const RrShard& shard : shards) by_merge.Merge(shard);

  ExpectSameCollection(by_add, by_merge);
}

TEST(RrCollectionTest, EmptySetsSurviveShardedMerge) {
  RrShard shard;
  shard.Add(std::vector<NodeId>{}, 1.0);
  shard.Add(std::vector<NodeId>{2, 4}, 0.5);
  shard.Add(std::vector<NodeId>{}, 0.25);
  ASSERT_EQ(shard.size(), 3u);

  RrCollection rr(6);
  rr.Merge(shard);
  rr.Merge(shard);
  // Empty sets count toward theta (size) but contribute no members.
  EXPECT_EQ(rr.size(), 6u);
  EXPECT_EQ(rr.TotalMembers(), 4u);
  EXPECT_DOUBLE_EQ(rr.TotalWeight(), 3.5);
  EXPECT_TRUE(rr.Members(0).empty());
  EXPECT_TRUE(rr.Members(5).empty());
  ASSERT_EQ(rr.RrSetsOf(2).size(), 2u);
  EXPECT_EQ(rr.RrSetsOf(2)[0], 1u);
  EXPECT_EQ(rr.RrSetsOf(2)[1], 4u);
  EXPECT_TRUE(rr.RrSetsOf(0).empty());
}

TEST(RrPipelineTest, AllEmptySamplesStillCountTowardTarget) {
  // A marginal sampler with every node blocked yields only empty sets;
  // the pipeline must still hit its size target at any thread count.
  const Graph& g = TestGraph();
  auto blocked = std::make_shared<std::vector<char>>(g.num_nodes(), 1);
  const RrSourceFactory source = [&g, blocked]() -> RrSampleFn {
    auto sampler = std::make_shared<RrSampler>(g);
    return [sampler, blocked](Rng& rng, std::vector<NodeId>* out) {
      sampler->SampleMarginal(rng, *blocked, out);
      return 1.0;
    };
  };
  for (unsigned threads : {1u, 3u}) {
    RrPipeline pipeline(source, 13, threads);
    RrCollection rr(g.num_nodes());
    pipeline.ExtendTo(&rr, 500);
    EXPECT_EQ(rr.size(), 500u);
    EXPECT_EQ(rr.TotalMembers(), 0u);
    EXPECT_DOUBLE_EQ(rr.TotalWeight(), 500.0);
  }
}

TEST(ImmParallelTest, SeedsAndEstimatesBitIdenticalAcrossThreadCounts) {
  const Graph& g = TestGraph();
  ImmParams params{.epsilon = 0.4, .ell = 1.0, .seed = 17, .num_threads = 1};
  const ImmResult r1 = Imm(g, 6, params);
  for (unsigned threads : {2u, 7u}) {
    params.num_threads = threads;
    const ImmResult rt = Imm(g, 6, params);
    EXPECT_EQ(r1.seeds, rt.seeds);
    EXPECT_EQ(r1.coverage_estimate, rt.coverage_estimate);
    EXPECT_EQ(r1.prefix_estimates, rt.prefix_estimates);
    EXPECT_EQ(r1.rr_count, rt.rr_count);
  }
}

TEST(ImmParallelTest, PrimaPlusBitIdenticalAcrossThreadCounts) {
  const Graph& g = TestGraph();
  const std::vector<NodeId> prior{1, 5, 9};
  ImmParams params{.epsilon = 0.5, .ell = 1.0, .seed = 23, .num_threads = 1};
  const ImmResult r1 = PrimaPlus(g, prior, {2, 4}, 6, params);
  for (unsigned threads : {2u, 7u}) {
    params.num_threads = threads;
    const ImmResult rt = PrimaPlus(g, prior, {2, 4}, 6, params);
    EXPECT_EQ(r1.seeds, rt.seeds);
    EXPECT_EQ(r1.coverage_estimate, rt.coverage_estimate);
    EXPECT_EQ(r1.prefix_estimates, rt.prefix_estimates);
  }
}

TEST(ImmParallelTest, SupGrdBitIdenticalAcrossThreadCounts) {
  const Graph& g = TestGraph();
  const UtilityConfig config = MakeConfigC6();
  Allocation sp(2);
  for (NodeId v = 0; v < 5; ++v) sp.Add(v * 7, 1);
  ASSERT_TRUE(CanRunSupGrd(config, sp).ok());

  auto run = [&](unsigned threads) {
    AlgoParams params;
    params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 29,
                  .num_threads = threads};
    AlgoDiagnostics diagnostics;
    const Allocation alloc = SupGrd(g, config, sp, 4, params, &diagnostics);
    return std::make_pair(alloc.SeedsOf(0), diagnostics.internal_estimate);
  };
  const auto [seeds1, estimate1] = run(1);
  ASSERT_EQ(seeds1.size(), 4u);
  for (unsigned threads : {2u, 7u}) {
    const auto [seedst, estimatet] = run(threads);
    EXPECT_EQ(seeds1, seedst);
    EXPECT_EQ(estimate1, estimatet);
  }
}

TEST(ParallelForWorkersTest, CoversAllChunksWithStableWorkerIds) {
  const std::size_t chunks = 103;
  const unsigned threads = 5;
  std::vector<std::atomic<int>> hits(chunks);
  std::vector<std::atomic<int>> worker_of(chunks);
  ParallelForWorkers(
      chunks,
      [&](std::size_t worker, std::size_t chunk) {
        EXPECT_LT(worker, threads);
        worker_of[chunk].store(static_cast<int>(worker));
        hits[chunk].fetch_add(1);
      },
      threads);
  for (std::size_t c = 0; c < chunks; ++c) {
    EXPECT_EQ(hits[c].load(), 1) << "chunk " << c;
    EXPECT_GE(worker_of[c].load(), 0);
  }
}

}  // namespace
}  // namespace cwm
