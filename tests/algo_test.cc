// Tests for the CWelMax algorithms: SeqGRD / SeqGRD-NM, MaxGRD, SupGRD,
// BestOf — budget feasibility, ordering behaviour, marginal-check effects,
// precondition checking, and solution quality against exhaustive search on
// small instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "algo/best_of.h"
#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "rrset/imm.h"
#include "simulate/estimator.h"

namespace cwm {
namespace {

AlgoParams FastParams(uint64_t seed = 3) {
  AlgoParams p;
  p.imm = {.epsilon = 0.5, .ell = 1.0, .seed = seed};
  p.estimator = {.num_worlds = 300, .seed = seed + 1};
  return p;
}

TEST(SeqGrdTest, RespectsBudgetsAndExhaustsThem) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 3));
  const UtilityConfig c = MakeConfigC1();
  const BudgetVector budgets{5, 3};
  const Allocation alloc = SeqGrd(g, c, Allocation(2), {0, 1}, budgets,
                                  FastParams());
  EXPECT_TRUE(alloc.RespectsBudgets(budgets));
  EXPECT_EQ(alloc.SeedsOf(0).size(), 5u);
  EXPECT_EQ(alloc.SeedsOf(1).size(), 3u);
}

TEST(SeqGrdTest, HigherUtilityItemGetsTopSeeds) {
  // C2: item 0 has 10x item 1's utility; SeqGRD gives item 0 the first
  // block of the greedy order, whose first element has the largest gain.
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 5));
  const UtilityConfig c = MakeConfigC2();
  AlgoDiagnostics diag;
  const Allocation alloc = SeqGrdNm(g, c, Allocation(2), {0, 1}, {3, 3},
                                    FastParams(), &diag);
  EXPECT_GT(diag.rr_count, 0u);
  const UtilityConfig unit = [] {
    UtilityConfigBuilder b(1);
    b.SetItemValue(0, 1.0);
    return std::move(b).Build().value();
  }();
  WelfareEstimator est(g, unit, {.num_worlds = 2000, .seed = 7});
  EXPECT_GE(est.Spread(alloc.SeedsOf(0)) + 2.0, est.Spread(alloc.SeedsOf(1)));
}

TEST(SeqGrdTest, ItemBlocksAreDisjoint) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 7));
  const UtilityConfig c = MakeConfigC1();
  const Allocation alloc = SeqGrdNm(g, c, Allocation(2), {0, 1}, {4, 4},
                                    FastParams());
  for (NodeId a : alloc.SeedsOf(0)) {
    EXPECT_EQ(std::count(alloc.SeedsOf(1).begin(), alloc.SeedsOf(1).end(), a),
              0);
  }
}

TEST(SeqGrdTest, MarginalCheckSkipsBlockingItem) {
  // Line graph where a cheap item placed next to the valuable item's seed
  // would block it. With marginal check, the cheap item's block must be
  // postponed (appended at the end), never hurting welfare.
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 9));
  const UtilityConfig c = MakeThreeItemConfig();
  const BudgetVector budgets{6, 6, 6};
  const AlgoParams params = FastParams(11);
  const Allocation with_check =
      SeqGrd(g, c, Allocation(3), {0, 1, 2}, budgets, params);
  const Allocation without_check =
      SeqGrdNm(g, c, Allocation(3), {0, 1, 2}, budgets, params);
  WelfareEstimator est(g, c, {.num_worlds = 2000, .seed = 13});
  // The marginal check can only help (up to estimator noise).
  EXPECT_GE(est.Welfare(with_check) + 0.5,
            est.Welfare(without_check) - 0.5);
}

TEST(SeqGrdTest, WorksOnTopOfFixedAllocation) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 15));
  const UtilityConfig c = MakeConfigC1();
  Allocation sp(2);
  sp.Add(0, 1);
  sp.Add(1, 1);
  const Allocation alloc =
      SeqGrd(g, c, sp, {0}, {4, 0x7fffffff}, FastParams());
  EXPECT_EQ(alloc.SeedsOf(0).size(), 4u);
  EXPECT_TRUE(alloc.SeedsOf(1).empty());
  // New seeds avoid the fixed ones (they are blocked in the RR sets).
  for (NodeId v : alloc.SeedsOf(0)) {
    EXPECT_NE(v, 0u);
    EXPECT_NE(v, 1u);
  }
}

TEST(MaxGrdTest, AllocatesExactlyOneItem) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 17));
  const UtilityConfig c = MakeConfigC1();
  const Allocation alloc =
      MaxGrd(g, c, Allocation(2), {0, 1}, {5, 5}, FastParams());
  const bool only_i = !alloc.SeedsOf(0).empty() && alloc.SeedsOf(1).empty();
  const bool only_j = alloc.SeedsOf(0).empty() && !alloc.SeedsOf(1).empty();
  EXPECT_TRUE(only_i || only_j);
}

TEST(MaxGrdTest, PrefersHighUtilityItemWhenGapLarge) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 19));
  const UtilityConfig c = MakeConfigC2();  // U(i) = 10 * U(j)
  const Allocation alloc =
      MaxGrd(g, c, Allocation(2), {0, 1}, {5, 5}, FastParams());
  EXPECT_EQ(alloc.SeedsOf(0).size(), 5u);
  EXPECT_TRUE(alloc.SeedsOf(1).empty());
}

TEST(MaxGrdTest, HonoursPerItemBudgetPrefix) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 21));
  const UtilityConfig c = MakeConfigC2();
  const Allocation alloc =
      MaxGrd(g, c, Allocation(2), {0, 1}, {2, 7}, FastParams());
  // Whichever item wins, its seed count equals its own budget.
  if (!alloc.SeedsOf(0).empty()) {
    EXPECT_EQ(alloc.SeedsOf(0).size(), 2u);
  } else {
    EXPECT_EQ(alloc.SeedsOf(1).size(), 7u);
  }
}

TEST(MaxGrdBeatsSeqOnPaperExample, FourNodeExample) {
  // §5.2: nodes {u,v,w,x}; u->v->w, x->w; U(i)=10, U(j)=1, U({i,j})=0;
  // budgets 1 and 1. MaxGRD's single-item allocation (30) beats the
  // two-item allocation (22).
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(3, 2, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 11.0).SetItemValue(1, 13.0);
  cb.SetItemPrice(0, 1.0).SetItemPrice(1, 12.0);
  cb.SetBundleValue(0x3, 13.0);
  const UtilityConfig c = std::move(cb).Build().value();
  const AlgoParams params = FastParams(23);
  const Allocation max_alloc =
      MaxGrd(g, c, Allocation(2), {0, 1}, {1, 1}, params);
  WelfareEstimator est(g, c, {.num_worlds = 16, .seed = 29});
  EXPECT_DOUBLE_EQ(est.Welfare(max_alloc), 30.0);
}

TEST(SupGrdTest, PreconditionsChecked) {
  const UtilityConfig c1 = MakeConfigC1();  // unbounded noise
  EXPECT_FALSE(CanRunSupGrd(c1, Allocation(2)).ok());

  const UtilityConfig c5 = MakeConfigC5();
  Allocation sp(2);
  sp.Add(3, 1);
  EXPECT_TRUE(CanRunSupGrd(c5, sp).ok());

  // Superior item pre-allocated: rejected.
  Allocation bad(2);
  bad.Add(3, 0);
  EXPECT_FALSE(CanRunSupGrd(c5, bad).ok());

  // Soft competition: rejected even with a bounded-noise superior item.
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  cb.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  cb.SetBundleValue(0x3, 8.7);
  cb.SetAllNoise(NoiseDistribution::ClampedNormal(0.01, 0.04));
  const UtilityConfig soft = std::move(cb).Build().value();
  EXPECT_FALSE(CanRunSupGrd(soft, Allocation(2)).ok());
}

TEST(SupGrdTest, AvoidsRegionClaimedByInferiorSeeds) {
  // Two deterministic chains; the inferior item holds the head of chain A.
  // SupGRD should seed the superior item at the head of chain B, where the
  // full marginal welfare is available.
  GraphBuilder b(60);
  for (NodeId v = 0; v < 29; ++v) b.AddEdge(v, v + 1, 1.0);
  for (NodeId v = 30; v < 59; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC6();
  Allocation sp(2);
  sp.Add(0, 1);  // inferior item at head of chain A
  AlgoDiagnostics diag;
  const Allocation alloc = SupGrd(g, c, sp, 1, FastParams(31), &diag);
  ASSERT_EQ(alloc.SeedsOf(0).size(), 1u);
  EXPECT_EQ(alloc.SeedsOf(0)[0], 30u);
  EXPECT_GT(diag.internal_estimate, 0.0);
}

TEST(SupGrdTest, UpgradeWelfareCountedWhenDisplacingInferior) {
  // One chain fully claimed by the inferior item: the superior item's
  // marginal per displaced node is U(i) - U(j) > 0, so seeding inside the
  // claimed chain is still worthwhile when there is nothing else.
  GraphBuilder b(20);
  for (NodeId v = 0; v < 19; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC5();  // gap 0.1
  Allocation sp(2);
  sp.Add(0, 1);
  const Allocation alloc = SupGrd(g, c, sp, 1, FastParams(37));
  ASSERT_EQ(alloc.SeedsOf(0).size(), 1u);
  // The best displacement seed is the chain head (displaces all 20 nodes).
  EXPECT_EQ(alloc.SeedsOf(0)[0], 0u);
}

TEST(SupGrdTest, BudgetRespected) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 41));
  const UtilityConfig c = MakeConfigC6();
  Allocation sp(2);
  const ImmResult imm = Imm(g, 5, {.epsilon = 0.5, .ell = 1.0, .seed = 5});
  for (NodeId v : imm.seeds) sp.Add(v, 1);
  const Allocation alloc = SupGrd(g, c, sp, 7, FastParams(43));
  EXPECT_EQ(alloc.SeedsOf(0).size(), 7u);
  EXPECT_TRUE(alloc.SeedsOf(1).empty());
}

TEST(BestOfTest, ReturnsBetterOfTheTwo) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(250, 2, 47));
  const UtilityConfig c = MakeConfigC3();
  const char* chosen = nullptr;
  const AlgoParams params = FastParams(53);
  const Allocation best =
      BestOfSeqMax(g, c, Allocation(2), {0, 1}, {4, 4}, params, &chosen);
  ASSERT_NE(chosen, nullptr);
  WelfareEstimator est(g, c, {.num_worlds = 1500, .seed = 59});
  const Allocation seq =
      SeqGrd(g, c, Allocation(2), {0, 1}, {4, 4}, params);
  const Allocation max =
      MaxGrd(g, c, Allocation(2), {0, 1}, {4, 4}, params);
  const double best_w = est.Welfare(best);
  EXPECT_GE(best_w + 1.0, std::min(est.Welfare(seq), est.Welfare(max)));
}

TEST(QualityTest, SeqGrdNearBruteForceOnTinyInstance) {
  // 8-node deterministic graph, budgets {1,1}: brute force over all 64
  // allocations; SeqGRD should land within 25% of the optimum.
  GraphBuilder b(8);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(3, 4, 1.0);
  b.AddEdge(5, 6, 1.0);
  b.AddEdge(6, 7, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  cb.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  cb.SetBundleValue(0x3, 4.9);  // C1 without noise
  const UtilityConfig c = std::move(cb).Build().value();
  WelfareEstimator est(g, c, {.num_worlds = 8, .seed = 61});
  double opt = 0;
  for (NodeId a = 0; a < 8; ++a) {
    for (NodeId bb = 0; bb < 8; ++bb) {
      Allocation alloc(2);
      alloc.Add(a, 0);
      alloc.Add(bb, 1);
      opt = std::max(opt, est.Welfare(alloc));
    }
  }
  const Allocation alloc =
      SeqGrd(g, c, Allocation(2), {0, 1}, {1, 1}, FastParams(67));
  EXPECT_GE(est.Welfare(alloc), 0.75 * opt);
}

}  // namespace
}  // namespace cwm
