// Edge-case and robustness tests across modules: degenerate graphs,
// extreme budgets, estimator determinism and thread invariance, IMM driver
// boundary conditions, and failure-injection on the fallible paths.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/loader.h"
#include "rrset/imm.h"
#include "rrset/prima_plus.h"
#include "obs/metrics.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"
#include "store/artifact_cache.h"
#include "store/format.h"
#include "support/failpoint.h"

namespace cwm {
namespace {

UtilityConfig UnitItem() {
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0);
  return std::move(b).Build().value();
}

TEST(DegenerateGraphTest, EdgelessGraphDiffusesNowhere) {
  GraphBuilder b(10);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 0u);
  const UtilityConfig c = UnitItem();
  WelfareEstimator est(g, c, {.num_worlds = 8, .seed = 1});
  Allocation alloc(1);
  alloc.Add(3, 0);
  EXPECT_DOUBLE_EQ(est.Welfare(alloc), 1.0);  // only the seed adopts
}

TEST(DegenerateGraphTest, ZeroProbabilityEdgesNeverFire) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.0);
  b.AddEdge(1, 2, 0.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = UnitItem();
  UicSimulator sim(g, c);
  Allocation alloc(1);
  alloc.Add(0, 0);
  for (uint64_t w = 1; w <= 20; ++w) {
    EXPECT_EQ(sim.RunWorld(alloc, EdgeWorld{w}, WorldUtilityTable(c, {0.0}))
                  .adopting_nodes,
              1u);
  }
}

TEST(DegenerateGraphTest, CycleTerminates) {
  GraphBuilder b(4);
  for (NodeId v = 0; v < 4; ++v) b.AddEdge(v, (v + 1) % 4, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(2, 1);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_EQ(out.adopting_nodes, 4u);  // converges despite the cycle
}

TEST(DegenerateGraphTest, SelfCompetitionOnSharedSeed) {
  // Both items seeded at the same node: it adopts the better one only
  // (pure competition) and the welfare counts once.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 3.0).SetItemValue(1, 2.5);
  cb.SetItemPrice(0, 1.0).SetItemPrice(1, 1.0);
  const UtilityConfig c = std::move(cb).Build().value();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(0, 1);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_DOUBLE_EQ(out.welfare, 4.0);  // both nodes adopt item 0 (U = 2)
  EXPECT_EQ(out.adopters_per_item[1], 0u);
}

TEST(EstimatorDeterminismTest, SameSeedSameAnswer) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 3));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(1, 1);
  WelfareEstimator a(g, c, {.num_worlds = 100, .seed = 42});
  WelfareEstimator b(g, c, {.num_worlds = 100, .seed = 42});
  EXPECT_DOUBLE_EQ(a.Welfare(alloc), b.Welfare(alloc));
}

TEST(EstimatorDeterminismTest, ThreadCountInvariant) {
  // The chunked world partition must not change the estimate: world w's
  // randomness depends only on (seed, w).
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 5));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  WelfareEstimator one(g, c,
                       {.num_worlds = 64, .seed = 7, .num_threads = 1});
  WelfareEstimator four(g, c,
                        {.num_worlds = 64, .seed = 7, .num_threads = 4});
  EXPECT_NEAR(one.Welfare(alloc), four.Welfare(alloc), 1e-9);
}

TEST(EstimatorDeterminismTest, DifferentSeedsDiffer) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 7));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  WelfareEstimator a(g, c, {.num_worlds = 50, .seed = 1});
  WelfareEstimator b(g, c, {.num_worlds = 50, .seed = 2});
  EXPECT_NE(a.Welfare(alloc), b.Welfare(alloc));
}

TEST(ImmBoundaryTest, BudgetEqualsNodeCount) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = Imm(g, 6, {.epsilon = 0.5, .ell = 1.0, .seed = 3});
  EXPECT_EQ(r.seeds.size(), 6u);
  // All nodes selected; estimate equals n.
  EXPECT_NEAR(r.coverage_estimate, 6.0, 1e-9);
}

TEST(ImmBoundaryTest, TinyGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = Imm(g, 1, {.epsilon = 0.5, .ell = 1.0, .seed = 5});
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);
}

TEST(ImmBoundaryTest, MaxRrSetCapRespected) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 9));
  ImmParams params{.epsilon = 0.2, .ell = 1.0, .seed = 7};
  params.max_rr_sets = 500;  // far below the theoretical theta
  const ImmResult r = Imm(g, 10, params);
  EXPECT_LE(r.rr_count, 500u);
  EXPECT_EQ(r.seeds.size(), 10u);  // still returns a full seed set
}

TEST(ImmBoundaryTest, PrimaPlusWithAllPriorBlocked) {
  // Prior seeds that dominate the graph: marginal RR sets are mostly
  // empty, yet PRIMA+ must terminate and return budget-many nodes.
  GraphBuilder b(30);
  for (NodeId v = 0; v + 1 < 30; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = PrimaPlus(g, {0}, {3}, 3,
                                {.epsilon = 0.5, .ell = 1.0, .seed = 11,
                                 .max_rr_sets = 200000});
  EXPECT_EQ(r.seeds.size(), 3u);
  for (NodeId s : r.seeds) EXPECT_NE(s, 0u);
}

TEST(SupGrdBoundaryTest, ZeroUtilitySuperiorItemShortCircuits) {
  GraphBuilder b(10);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  // Superior item with zero deterministic utility: E[U+] = 0.
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 1.0).SetItemPrice(0, 1.0);   // U = 0
  cb.SetItemValue(1, 0.5).SetItemPrice(1, 1.0);   // U = -0.5
  const UtilityConfig c = std::move(cb).Build().value();
  ASSERT_TRUE(CanRunSupGrd(c, Allocation(2)).ok());
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 3};
  const Allocation alloc = SupGrd(g, c, Allocation(2), 2, params);
  EXPECT_EQ(alloc.SeedsOf(0).size(), 2u);
}

TEST(SeqGrdBoundaryTest, SingleItemReducesToMarginalIm) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 13));
  const UtilityConfig c = UnitItem();
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 5};
  params.estimator = {.num_worlds = 100, .seed = 7};
  const Allocation seq = SeqGrd(g, c, Allocation(1), {0}, {5}, params);
  const ImmResult imm = Imm(g, 5, params.imm);
  // With one item and no prior seeds, SeqGRD is spread maximization: the
  // two seed sets should reach comparable spread.
  WelfareEstimator est(g, c, {.num_worlds = 2000, .seed = 9});
  EXPECT_NEAR(est.Welfare(seq), est.Spread(imm.seeds),
              0.15 * est.Spread(imm.seeds) + 2.0);
}

TEST(SeqGrdBoundaryTest, BudgetLargerThanPoolStillFeasible) {
  GraphBuilder b(12);
  for (NodeId v = 0; v + 1 < 12; ++v) b.AddEdge(v, v + 1, 0.5);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 3};
  params.estimator = {.num_worlds = 50, .seed = 5};
  // Budgets sum to the full node count.
  const Allocation alloc =
      SeqGrdNm(g, c, Allocation(2), {0, 1}, {6, 6}, params);
  EXPECT_EQ(alloc.SeedsOf(0).size(), 6u);
  EXPECT_EQ(alloc.SeedsOf(1).size(), 6u);
}

TEST(LoaderFailureTest, WriteToUnwritablePathFails) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(10, 2, 3));
  const Status s = WriteEdgeList(g, "/nonexistent_dir/out.txt");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
}

TEST(LoaderFailureTest, EmptyFileYieldsEmptyGraph) {
  const std::string path = ::testing::TempDir() + "/cwm_empty.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  StatusOr<Graph> g = ReadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);
  EXPECT_EQ(g.value().num_edges(), 0u);
}

TEST(NoiseWorldTest, SampleNoiseWorldMatchesDistributions) {
  const UtilityConfig c = MakeConfigC5();  // clamped noise both items
  Rng rng(3);
  for (int it = 0; it < 200; ++it) {
    const std::vector<double> noise = SampleNoiseWorld(c, rng);
    ASSERT_EQ(noise.size(), 2u);
    EXPECT_LE(std::abs(noise[0]), 0.04 + 1e-12);
    EXPECT_LE(std::abs(noise[1]), 0.04 + 1e-12);
  }
}

TEST(ExposureAccountingTest, DesireTracksBlockedItems) {
  // Even when item j is never adopted (blocked), nodes exposed to it
  // count in the one-sided-exposure statistic via their desire sets.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);  // item i only: everyone one-sided
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_EQ(out.one_sided_exposure_01, 3u);
}

// ---- Failpoint machinery ----------------------------------------------

TEST(FailpointTest, UnknownNamesAndBadSpecsAreRejected) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  EXPECT_FALSE(failpoints.Set("no.such.site", "error").ok());
  EXPECT_FALSE(failpoints.Set("store.write.fsync", "bogus").ok());
  EXPECT_FALSE(failpoints.Set("store.write.fsync", "error(bogus)").ok());
  EXPECT_FALSE(failpoints.Set("store.write.fsync", "delay(-1)").ok());
  EXPECT_FALSE(failpoints.Set("store.write.fsync", "0x*error").ok());
  EXPECT_FALSE(FailpointsArmed());
}

TEST(FailpointTest, CountedErrorFiresThenDisarms) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(
      failpoints.Set("store.write.fsync", "2*error(corruption)").ok());
  EXPECT_TRUE(FailpointsArmed());
  const uint64_t before = failpoints.HitCount("store.write.fsync");

  EXPECT_EQ(failpoint_internal::Fire("store.write.fsync").code(),
            Status::Code::kCorruption);
  EXPECT_EQ(failpoint_internal::Fire("store.write.fsync").code(),
            Status::Code::kCorruption);
  // Exhausted: the site disarmed itself and later calls pass through.
  EXPECT_TRUE(failpoint_internal::Fire("store.write.fsync").ok());
  EXPECT_EQ(failpoints.HitCount("store.write.fsync"), before + 2);
  EXPECT_FALSE(FailpointsArmed());
}

TEST(FailpointTest, DelayPolicySleepsThenSucceeds) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(failpoints.Set("serve.send", "1*delay(20)").ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(failpoint_internal::Fire("serve.send").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            20);
  EXPECT_FALSE(FailpointsArmed());  // 1* exhausted
}

TEST(FailpointTest, InstallFromSpecListAndClearAll) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(failpoints
                  .InstallFromSpec("cache.rr.load=error(notfound);"
                                   "store.write.rename=3*error")
                  .ok());
  bool saw_load = false, saw_rename = false;
  for (const FailpointInfo& info : failpoints.List()) {
    if (info.name == "cache.rr.load") {
      saw_load = true;
      EXPECT_EQ(info.policy, "error(notfound)");
    }
    if (info.name == "store.write.rename") {
      saw_rename = true;
      EXPECT_EQ(info.policy, "3*error");
    }
  }
  EXPECT_TRUE(saw_load);
  EXPECT_TRUE(saw_rename);
  // The first bad entry stops the parse and reports which one.
  EXPECT_FALSE(failpoints.InstallFromSpec("cache.rr.load=error;oops").ok());

  failpoints.ClearAll();
  EXPECT_FALSE(FailpointsArmed());
  EXPECT_EQ(failpoints.HitCount("cache.rr.load"), 0u);
  for (const FailpointInfo& info : failpoints.List()) {
    EXPECT_TRUE(info.policy.empty()) << info.name;
  }
}

// ---- Degraded-mode end-to-end -----------------------------------------

// A warm cache whose every RR read fails mid-run must resample and land
// on bit-identical results — the cache is an accelerator, never an
// input — while counting each fallback in store.degraded.rr_resamples.
TEST(FailpointTest, RrLoadFailureResamplesBitIdentically) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  const Graph g = WithWeightedCascade(BarabasiAlbert(400, 3, 21));

  ImmParams params;
  params.seed = 0xFA11;
  params.num_threads = 2;
  const ImmResult uncached = Imm(g, 8, params);

  static const uint64_t token = std::random_device{}();
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cwm_robust_" + std::to_string(token));
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(dir.string());
  ASSERT_TRUE(cache.ok());
  params.cache = cache.value().get();
  params.graph_hash = GraphContentHash(g);
  const ImmResult cold = Imm(g, 8, params);

  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(failpoints.Set("cache.rr.load", "error(corruption)").ok());
  Counter& resamples =
      MetricsRegistry::Global().GetCounter("store.degraded.rr_resamples");
  const uint64_t before = resamples.value();
  const ImmResult degraded = Imm(g, 8, params);
  failpoints.Clear("cache.rr.load");

  EXPECT_GT(resamples.value(), before);
  EXPECT_GT(cache.value()->stats().quarantined, 0u);
  for (const ImmResult* other : {&cold, &degraded}) {
    ASSERT_EQ(uncached.seeds, other->seeds);
    ASSERT_EQ(uncached.rr_count, other->rr_count);
  }
  std::error_code ec;
  std::filesystem::remove_all(dir, ec);
}

}  // namespace
}  // namespace cwm
