// Edge-case and robustness tests across modules: degenerate graphs,
// extreme budgets, estimator determinism and thread invariance, IMM driver
// boundary conditions, and failure-injection on the fallible paths.
#include <gtest/gtest.h>

#include <vector>

#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/loader.h"
#include "rrset/imm.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"

namespace cwm {
namespace {

UtilityConfig UnitItem() {
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0);
  return std::move(b).Build().value();
}

TEST(DegenerateGraphTest, EdgelessGraphDiffusesNowhere) {
  GraphBuilder b(10);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 0u);
  const UtilityConfig c = UnitItem();
  WelfareEstimator est(g, c, {.num_worlds = 8, .seed = 1});
  Allocation alloc(1);
  alloc.Add(3, 0);
  EXPECT_DOUBLE_EQ(est.Welfare(alloc), 1.0);  // only the seed adopts
}

TEST(DegenerateGraphTest, ZeroProbabilityEdgesNeverFire) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.0);
  b.AddEdge(1, 2, 0.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = UnitItem();
  UicSimulator sim(g, c);
  Allocation alloc(1);
  alloc.Add(0, 0);
  for (uint64_t w = 1; w <= 20; ++w) {
    EXPECT_EQ(sim.RunWorld(alloc, EdgeWorld{w}, WorldUtilityTable(c, {0.0}))
                  .adopting_nodes,
              1u);
  }
}

TEST(DegenerateGraphTest, CycleTerminates) {
  GraphBuilder b(4);
  for (NodeId v = 0; v < 4; ++v) b.AddEdge(v, (v + 1) % 4, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(2, 1);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_EQ(out.adopting_nodes, 4u);  // converges despite the cycle
}

TEST(DegenerateGraphTest, SelfCompetitionOnSharedSeed) {
  // Both items seeded at the same node: it adopts the better one only
  // (pure competition) and the welfare counts once.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 3.0).SetItemValue(1, 2.5);
  cb.SetItemPrice(0, 1.0).SetItemPrice(1, 1.0);
  const UtilityConfig c = std::move(cb).Build().value();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(0, 1);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_DOUBLE_EQ(out.welfare, 4.0);  // both nodes adopt item 0 (U = 2)
  EXPECT_EQ(out.adopters_per_item[1], 0u);
}

TEST(EstimatorDeterminismTest, SameSeedSameAnswer) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 3));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(1, 1);
  WelfareEstimator a(g, c, {.num_worlds = 100, .seed = 42});
  WelfareEstimator b(g, c, {.num_worlds = 100, .seed = 42});
  EXPECT_DOUBLE_EQ(a.Welfare(alloc), b.Welfare(alloc));
}

TEST(EstimatorDeterminismTest, ThreadCountInvariant) {
  // The chunked world partition must not change the estimate: world w's
  // randomness depends only on (seed, w).
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 5));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  WelfareEstimator one(g, c,
                       {.num_worlds = 64, .seed = 7, .num_threads = 1});
  WelfareEstimator four(g, c,
                        {.num_worlds = 64, .seed = 7, .num_threads = 4});
  EXPECT_NEAR(one.Welfare(alloc), four.Welfare(alloc), 1e-9);
}

TEST(EstimatorDeterminismTest, DifferentSeedsDiffer) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 7));
  const UtilityConfig c = MakeConfigC1();
  Allocation alloc(2);
  alloc.Add(0, 0);
  WelfareEstimator a(g, c, {.num_worlds = 50, .seed = 1});
  WelfareEstimator b(g, c, {.num_worlds = 50, .seed = 2});
  EXPECT_NE(a.Welfare(alloc), b.Welfare(alloc));
}

TEST(ImmBoundaryTest, BudgetEqualsNodeCount) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = Imm(g, 6, {.epsilon = 0.5, .ell = 1.0, .seed = 3});
  EXPECT_EQ(r.seeds.size(), 6u);
  // All nodes selected; estimate equals n.
  EXPECT_NEAR(r.coverage_estimate, 6.0, 1e-9);
}

TEST(ImmBoundaryTest, TinyGraph) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = Imm(g, 1, {.epsilon = 0.5, .ell = 1.0, .seed = 5});
  ASSERT_EQ(r.seeds.size(), 1u);
  EXPECT_EQ(r.seeds[0], 0u);
}

TEST(ImmBoundaryTest, MaxRrSetCapRespected) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 9));
  ImmParams params{.epsilon = 0.2, .ell = 1.0, .seed = 7};
  params.max_rr_sets = 500;  // far below the theoretical theta
  const ImmResult r = Imm(g, 10, params);
  EXPECT_LE(r.rr_count, 500u);
  EXPECT_EQ(r.seeds.size(), 10u);  // still returns a full seed set
}

TEST(ImmBoundaryTest, PrimaPlusWithAllPriorBlocked) {
  // Prior seeds that dominate the graph: marginal RR sets are mostly
  // empty, yet PRIMA+ must terminate and return budget-many nodes.
  GraphBuilder b(30);
  for (NodeId v = 0; v + 1 < 30; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult r = PrimaPlus(g, {0}, {3}, 3,
                                {.epsilon = 0.5, .ell = 1.0, .seed = 11,
                                 .max_rr_sets = 200000});
  EXPECT_EQ(r.seeds.size(), 3u);
  for (NodeId s : r.seeds) EXPECT_NE(s, 0u);
}

TEST(SupGrdBoundaryTest, ZeroUtilitySuperiorItemShortCircuits) {
  GraphBuilder b(10);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  // Superior item with zero deterministic utility: E[U+] = 0.
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 1.0).SetItemPrice(0, 1.0);   // U = 0
  cb.SetItemValue(1, 0.5).SetItemPrice(1, 1.0);   // U = -0.5
  const UtilityConfig c = std::move(cb).Build().value();
  ASSERT_TRUE(CanRunSupGrd(c, Allocation(2)).ok());
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 3};
  const Allocation alloc = SupGrd(g, c, Allocation(2), 2, params);
  EXPECT_EQ(alloc.SeedsOf(0).size(), 2u);
}

TEST(SeqGrdBoundaryTest, SingleItemReducesToMarginalIm) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 13));
  const UtilityConfig c = UnitItem();
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 5};
  params.estimator = {.num_worlds = 100, .seed = 7};
  const Allocation seq = SeqGrd(g, c, Allocation(1), {0}, {5}, params);
  const ImmResult imm = Imm(g, 5, params.imm);
  // With one item and no prior seeds, SeqGRD is spread maximization: the
  // two seed sets should reach comparable spread.
  WelfareEstimator est(g, c, {.num_worlds = 2000, .seed = 9});
  EXPECT_NEAR(est.Welfare(seq), est.Spread(imm.seeds),
              0.15 * est.Spread(imm.seeds) + 2.0);
}

TEST(SeqGrdBoundaryTest, BudgetLargerThanPoolStillFeasible) {
  GraphBuilder b(12);
  for (NodeId v = 0; v + 1 < 12; ++v) b.AddEdge(v, v + 1, 0.5);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 3};
  params.estimator = {.num_worlds = 50, .seed = 5};
  // Budgets sum to the full node count.
  const Allocation alloc =
      SeqGrdNm(g, c, Allocation(2), {0, 1}, {6, 6}, params);
  EXPECT_EQ(alloc.SeedsOf(0).size(), 6u);
  EXPECT_EQ(alloc.SeedsOf(1).size(), 6u);
}

TEST(LoaderFailureTest, WriteToUnwritablePathFails) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(10, 2, 3));
  const Status s = WriteEdgeList(g, "/nonexistent_dir/out.txt");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kIOError);
}

TEST(LoaderFailureTest, EmptyFileYieldsEmptyGraph) {
  const std::string path = ::testing::TempDir() + "/cwm_empty.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fclose(f);
  StatusOr<Graph> g = ReadEdgeList(path);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 0u);
  EXPECT_EQ(g.value().num_edges(), 0u);
}

TEST(NoiseWorldTest, SampleNoiseWorldMatchesDistributions) {
  const UtilityConfig c = MakeConfigC5();  // clamped noise both items
  Rng rng(3);
  for (int it = 0; it < 200; ++it) {
    const std::vector<double> noise = SampleNoiseWorld(c, rng);
    ASSERT_EQ(noise.size(), 2u);
    EXPECT_LE(std::abs(noise[0]), 0.04 + 1e-12);
    EXPECT_LE(std::abs(noise[1]), 0.04 + 1e-12);
  }
}

TEST(ExposureAccountingTest, DesireTracksBlockedItems) {
  // Even when item j is never adopted (blocked), nodes exposed to it
  // count in the one-sided-exposure statistic via their desire sets.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(0, 2, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC1();
  UicSimulator sim(g, c);
  Allocation alloc(2);
  alloc.Add(0, 0);  // item i only: everyone one-sided
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0}));
  EXPECT_EQ(out.one_sided_exposure_01, 3u);
}

}  // namespace
}  // namespace cwm
