// Tests for the UIC diffusion engine and Monte-Carlo estimators, including
// exact replays of the paper's Theorem 1 counterexamples and the §5.2
// SeqGRD-vs-MaxGRD example (both have deterministic graphs and no noise,
// so simulated welfare must match the paper's arithmetic exactly).
#include <gtest/gtest.h>

#include <vector>

#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "model/allocation.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"
#include "simulate/world.h"

namespace cwm {
namespace {

Graph Chain(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId v = 0; v + 1 < n; ++v) b.AddEdge(v, v + 1, 1.0);
  return std::move(b).Build();
}

UtilityConfig SingleItemUnit() {
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0).SetItemPrice(0, 0.0);
  return std::move(b).Build().value();
}

TEST(EdgeWorldTest, DeterministicCoins) {
  const EdgeWorld w{123};
  for (EdgeId e = 0; e < 100; ++e) {
    EXPECT_EQ(w.Live(e, 0.5), w.Live(e, 0.5));
  }
  EXPECT_TRUE(w.Live(0, 1.0));
  EXPECT_FALSE(w.Live(0, 0.0));
}

TEST(UicSimulatorTest, SingleItemFullChainAdoption) {
  const Graph g = Chain(5);
  const UtilityConfig c = SingleItemUnit();
  UicSimulator sim(g, c);
  Allocation alloc(1);
  alloc.Add(0, 0);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0}));
  EXPECT_EQ(out.adopting_nodes, 5u);
  EXPECT_DOUBLE_EQ(out.welfare, 5.0);
  EXPECT_EQ(out.adopters_per_item[0], 5u);
}

TEST(UicSimulatorTest, NegativeUtilityNeverAdopted) {
  const Graph g = Chain(3);
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0).SetItemPrice(0, 2.0);
  const UtilityConfig c = std::move(b).Build().value();
  UicSimulator sim(g, c);
  Allocation alloc(1);
  alloc.Add(0, 0);
  const WorldOutcome out =
      sim.RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0}));
  EXPECT_EQ(out.adopting_nodes, 0u);
  EXPECT_DOUBLE_EQ(out.welfare, 0.0);
}

TEST(UicSimulatorTest, ScratchReusableAcrossWorlds) {
  const Graph g = Chain(4);
  const UtilityConfig c = SingleItemUnit();
  UicSimulator sim(g, c);
  Allocation alloc(1);
  alloc.Add(0, 0);
  const WorldUtilityTable table(c, {0.0});
  for (int w = 0; w < 10; ++w) {
    const WorldOutcome out = sim.RunWorld(alloc, EdgeWorld{1}, table);
    EXPECT_EQ(out.adopting_nodes, 4u);
  }
}

// The two-node network of Theorem 1 (Fig 1(a) utilities): u -> v, prob 1.
class Theorem1Test : public ::testing::Test {
 protected:
  Theorem1Test() : config_(MakeTheorem1Config()) {
    GraphBuilder b(2);
    b.AddEdge(0, 1, 1.0);  // u = 0, v = 1
    graph_ = std::move(b).Build();
  }

  double Welfare(const Allocation& alloc) {
    UicSimulator sim(graph_, config_);
    return sim.RunWorld(alloc, EdgeWorld{1},
                        WorldUtilityTable(config_, {0.0, 0.0, 0.0}))
        .welfare;
  }

  Graph graph_;
  UtilityConfig config_;
};

TEST_F(Theorem1Test, MonotonicityCounterexample) {
  // S1 = {(u, i1)}: both adopt i1, welfare 8.
  Allocation s1(3);
  s1.Add(0, 0);
  EXPECT_DOUBLE_EQ(Welfare(s1), 8.0);
  // S2 = S1 + (v, i2): u adopts i1, v adopts i2 -> welfare 7 < 8.
  Allocation s2 = s1;
  s2.Add(1, 1);
  EXPECT_DOUBLE_EQ(Welfare(s2), 7.0);
}

TEST_F(Theorem1Test, SubmodularityCounterexample) {
  // S1 = {(v,i2)}; marginal of (u,i1) is 4.
  Allocation s1(3);
  s1.Add(1, 1);
  Allocation s1x = s1;
  s1x.Add(0, 0);
  EXPECT_DOUBLE_EQ(Welfare(s1), 3.0);
  EXPECT_DOUBLE_EQ(Welfare(s1x), 7.0);
  // S2 = {(v,i2),(v,i3)}; v adopts i3 alone (3.5); with (u,i1) added v
  // upgrades to {i1,i3} (4.5): marginal 5 > 4. Non-submodular.
  Allocation s2(3);
  s2.Add(1, 1);
  s2.Add(1, 2);
  Allocation s2x = s2;
  s2x.Add(0, 0);
  EXPECT_DOUBLE_EQ(Welfare(s2), 3.5);
  EXPECT_DOUBLE_EQ(Welfare(s2x), 8.5);
  EXPECT_GT(Welfare(s2x) - Welfare(s2), Welfare(s1x) - Welfare(s1));
}

TEST_F(Theorem1Test, SupermodularityCounterexample) {
  // Marginal of (u,i1) at the empty allocation is 8; at {(v,i2)} it is 4.
  Allocation empty(3);
  Allocation just_u(3);
  just_u.Add(0, 0);
  Allocation s2(3);
  s2.Add(1, 1);
  Allocation s2x = s2;
  s2x.Add(0, 0);
  const double marginal_at_empty = Welfare(just_u) - Welfare(empty);
  const double marginal_at_s2 = Welfare(s2x) - Welfare(s2);
  EXPECT_DOUBLE_EQ(marginal_at_empty, 8.0);
  EXPECT_DOUBLE_EQ(marginal_at_s2, 4.0);
  EXPECT_LT(marginal_at_s2, marginal_at_empty);
}

// §5.2 example: nodes {u,v,w,x}, edges u->v->w and x->w, all prob 1.
// Items i (U=10), j (U=1), bundle {i,j} has utility 0.
class MaxVsSeqExampleTest : public ::testing::Test {
 protected:
  MaxVsSeqExampleTest() {
    GraphBuilder b(4);  // u=0, v=1, w=2, x=3
    b.AddEdge(0, 1, 1.0);
    b.AddEdge(1, 2, 1.0);
    b.AddEdge(3, 2, 1.0);
    graph_ = std::move(b).Build();
    UtilityConfigBuilder cb(2);
    cb.SetItemValue(0, 11.0).SetItemValue(1, 13.0);
    cb.SetItemPrice(0, 1.0).SetItemPrice(1, 12.0);
    cb.SetBundleValue(0x3, 13.0);  // U({i,j}) = 13 - 13 = 0
    config_ = std::move(cb).Build().value();
  }

  double Welfare(const Allocation& alloc) {
    UicSimulator sim(graph_, config_);
    return sim
        .RunWorld(alloc, EdgeWorld{1}, WorldUtilityTable(config_, {0.0, 0.0}))
        .welfare;
  }

  Graph graph_;
  UtilityConfig config_;
};

TEST_F(MaxVsSeqExampleTest, SeqStyleAllocationGets22) {
  // {(u,i),(x,j)}: w hears j at t=2 (adopts), i at t=3 (blocked by the
  // progressive constraint since U({i,j}) = 0 < 1).
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(3, 1);
  EXPECT_DOUBLE_EQ(Welfare(alloc), 22.0);
}

TEST_F(MaxVsSeqExampleTest, MaxStyleAllocationGets30) {
  Allocation alloc(2);
  alloc.Add(0, 0);
  EXPECT_DOUBLE_EQ(Welfare(alloc), 30.0);
}

TEST_F(MaxVsSeqExampleTest, ArrivalOrderDecidesBlocking) {
  // Seeding j at v instead: w hears i (via v? no — v adopts j? v desires j
  // only at t=1). Seed i at u, j at v: v desires {j} at t=1 adopts j
  // (U=1); at t=2 v hears i: candidates containing j: {j}=1, {i,j}=0 ->
  // stays. w hears j at t=2, adopts j; i never reaches w (blocked at v).
  Allocation alloc(2);
  alloc.Add(0, 0);
  alloc.Add(1, 1);
  // welfare: u adopts i (10), v adopts j (1), w adopts j (1) = 12.
  EXPECT_DOUBLE_EQ(Welfare(alloc), 12.0);
}

TEST(EstimatorTest, DeterministicGraphExactWelfare) {
  const Graph g = Chain(4);
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 16, .seed = 3});
  Allocation alloc(1);
  alloc.Add(0, 0);
  EXPECT_DOUBLE_EQ(est.Welfare(alloc), 4.0);
}

TEST(EstimatorTest, WelfareMatchesSpreadTimesUtilitySingleItem) {
  // For one noiseless item with U = u, rho(S) = u * sigma(S).
  GraphBuilder b(50);
  Rng rng(7);
  for (int e = 0; e < 200; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(50));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(50));
    if (u != v) b.AddEdge(u, v, 0.3);
  }
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(1);
  cb.SetItemValue(0, 3.5).SetItemPrice(0, 1.0);  // U = 2.5
  const UtilityConfig c = std::move(cb).Build().value();
  WelfareEstimator est(g, c, {.num_worlds = 4000, .seed = 5});
  Allocation alloc(1);
  alloc.Add(0, 0);
  alloc.Add(1, 0);
  const double welfare = est.Welfare(alloc);
  const double spread = est.Spread({0, 1});
  EXPECT_NEAR(welfare, 2.5 * spread, 1e-9);  // same worlds, exact identity
}

TEST(EstimatorTest, MarginalOfNothingIsZero) {
  const Graph g = Chain(4);
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 32, .seed = 3});
  Allocation base(1);
  base.Add(0, 0);
  Allocation empty(1);
  EXPECT_DOUBLE_EQ(est.MarginalWelfare(base, empty), 0.0);
}

TEST(EstimatorTest, MarginalMatchesDifferenceOfWelfares) {
  const Graph g = Chain(6);
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 64, .seed = 9});
  Allocation base(1);
  base.Add(3, 0);
  Allocation extra(1);
  extra.Add(0, 0);
  const double direct = est.MarginalWelfare(base, extra);
  const double diff =
      est.Welfare(Allocation::Union(base, extra)) - est.Welfare(base);
  EXPECT_NEAR(direct, diff, 1e-9);  // common random numbers: exact
}

TEST(EstimatorTest, SpreadOnProbabilisticChain) {
  // Chain with p = 0.5: sigma({head}) = 1 + 0.5 + 0.25 + ... = 2 - 2^-k.
  GraphBuilder b(10);
  for (NodeId v = 0; v + 1 < 10; ++v) b.AddEdge(v, v + 1, 0.5);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 40000, .seed = 13});
  EXPECT_NEAR(est.Spread({0}), 2.0, 0.05);
}

TEST(EstimatorTest, StatsCountsAdoptersPerItem) {
  const Graph g = Chain(3);
  const UtilityConfig c = MakeConfigC1();
  WelfareEstimator est(g, c, {.num_worlds = 500, .seed = 17});
  Allocation alloc(2);
  alloc.Add(0, 0);  // item i at the head: flows down the chain
  const WelfareStats stats = est.Stats(alloc);
  EXPECT_GT(stats.adopters_per_item[0], 2.0);  // usually all 3 nodes
  EXPECT_DOUBLE_EQ(stats.adopters_per_item[1], 0.0);
  EXPECT_GT(stats.welfare, 0.0);
  EXPECT_LE(stats.adopting_nodes, 3.0);
}

TEST(EstimatorTest, BalancedExposureFullWhenNoSeeds) {
  const Graph g = Chain(5);
  const UtilityConfig c = MakeConfigC1();
  WelfareEstimator est(g, c, {.num_worlds = 50, .seed = 19});
  EXPECT_DOUBLE_EQ(est.BalancedExposure(Allocation(2)), 5.0);
}

TEST(EstimatorTest, BalancedExposureDropsWithOneSidedSeed) {
  const Graph g = Chain(5);
  const UtilityConfig c = MakeConfigC1();
  WelfareEstimator est(g, c, {.num_worlds = 200, .seed = 19});
  Allocation alloc(2);
  alloc.Add(0, 0);
  // Item i alone exposes nodes one-sidedly wherever it reaches.
  EXPECT_LT(est.BalancedExposure(alloc), 5.0);
}

TEST(EstimatorTest, BalancedExposureRestoredByPairedSeeds) {
  const Graph g = Chain(5);
  const UtilityConfig c = MakeConfigC3();  // soft competition: both adopted
  WelfareEstimator est(g, c, {.num_worlds = 200, .seed = 23});
  Allocation one(2);
  one.Add(0, 0);
  Allocation both(2);
  both.Add(0, 0);
  both.Add(0, 1);
  EXPECT_GT(est.BalancedExposure(both), est.BalancedExposure(one));
}

TEST(ReachableCountTest, MatchesBfsOnDeterministicGraph) {
  const Graph g = Chain(7);
  const UtilityConfig c = SingleItemUnit();
  UicSimulator sim(g, c);
  EXPECT_EQ(sim.ReachableCount({0}, EdgeWorld{4}), 7u);
  EXPECT_EQ(sim.ReachableCount({3}, EdgeWorld{4}), 4u);
  EXPECT_EQ(sim.ReachableCount({0, 3}, EdgeWorld{4}), 7u);
}

}  // namespace
}  // namespace cwm
