// Tests for the extension modules: classic IM seed heuristics
// (HighDegree / DegreeDiscount / reverse PageRank) and the mixed
// competition/complementarity support (§7 future work).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "algo/seq_grd.h"
#include "baselines/heuristics.h"
#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"

namespace cwm {
namespace {

Graph TwoStars() {
  // Hub 0 with 20 leaves, hub 21 with 10 leaves.
  GraphBuilder b(32);
  for (NodeId leaf = 1; leaf <= 20; ++leaf) b.AddEdge(0, leaf, 0.5);
  for (NodeId leaf = 22; leaf <= 31; ++leaf) b.AddEdge(21, leaf, 0.5);
  return std::move(b).Build();
}

TEST(HighDegreeRankTest, OrdersHubsFirst) {
  const Graph g = TwoStars();
  const auto top = HighDegreeRank(g, 2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0], 0u);
  EXPECT_EQ(top[1], 21u);
}

TEST(HighDegreeRankTest, ClampsToNodeCount) {
  const Graph g = TwoStars();
  EXPECT_EQ(HighDegreeRank(g, 100).size(), g.num_nodes());
}

TEST(DegreeDiscountRankTest, StartsWithTopDegree) {
  const Graph g = TwoStars();
  const auto rank = DegreeDiscountRank(g, 3, 0.1);
  ASSERT_EQ(rank.size(), 3u);
  EXPECT_EQ(rank[0], 0u);
  EXPECT_EQ(rank[1], 21u);
}

TEST(DegreeDiscountRankTest, DiscountsNeighboursOfSelected) {
  // Path hub: 0 -> {1, 2, 3}; 1 -> {4, 5}; 6 -> {7, 8}. After picking 0,
  // node 1 (a neighbour of 0) is discounted below node 6 despite the tie
  // in raw degree.
  GraphBuilder b(9);
  b.AddEdge(0, 1, 0.1);
  b.AddEdge(0, 2, 0.1);
  b.AddEdge(0, 3, 0.1);
  b.AddEdge(1, 4, 0.1);
  b.AddEdge(1, 5, 0.1);
  b.AddEdge(6, 7, 0.1);
  b.AddEdge(6, 8, 0.1);
  const Graph g = std::move(b).Build();
  const auto rank = DegreeDiscountRank(g, 2, 0.1);
  EXPECT_EQ(rank[0], 0u);
  EXPECT_EQ(rank[1], 6u);
}

TEST(DegreeDiscountRankTest, FillsWhenBudgetNearN) {
  const Graph g = TwoStars();
  const auto rank = DegreeDiscountRank(g, g.num_nodes(), 0.01);
  EXPECT_EQ(rank.size(), g.num_nodes());
  // Every node exactly once.
  auto sorted = rank;
  std::sort(sorted.begin(), sorted.end());
  for (NodeId v = 0; v < g.num_nodes(); ++v) EXPECT_EQ(sorted[v], v);
}

TEST(ReversePageRankTest, SumsToOneAndFavoursInfluencers) {
  const Graph g = TwoStars();
  const auto pr = ReversePageRank(g, 0.85, 50);
  double sum = 0;
  for (double x : pr) sum += x;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  // The hub that influences 20 leaves outranks the one influencing 10,
  // and both outrank leaves.
  EXPECT_GT(pr[0], pr[21]);
  EXPECT_GT(pr[21], pr[5]);
}

TEST(PageRankRankTest, TopIsBigHub) {
  const Graph g = TwoStars();
  const auto top = PageRankRank(g, 1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0], 0u);
}

TEST(PageRankRankTest, AgreesWithSpreadOrderOnPaperNetwork) {
  // Loose sanity: on a BA network the PageRank top-10 should overlap the
  // degree top-10 substantially.
  const Graph g = WithWeightedCascade(BarabasiAlbert(500, 2, 7));
  const auto pr = PageRankRank(g, 10);
  const auto deg = HighDegreeRank(g, 10);
  int overlap = 0;
  for (NodeId v : pr) {
    overlap += std::count(deg.begin(), deg.end(), v) > 0;
  }
  EXPECT_GE(overlap, 5);
}

TEST(ComplementarityTest, DefaultValidationRejectsSupermodular) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 2.0).SetItemValue(1, 2.0);
  b.SetBundleValue(0x3, 5.0);
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(ComplementarityTest, MonotoneOnlyAcceptsSupermodular) {
  UtilityConfigBuilder b(2);
  b.SetValidation(BundleValidation::kMonotoneOnly);
  b.SetItemValue(0, 2.0).SetItemValue(1, 2.0);
  b.SetBundleValue(0x3, 5.0);
  StatusOr<UtilityConfig> config = std::move(b).Build();
  ASSERT_TRUE(config.ok());
  EXPECT_TRUE(config.value().HasComplementaryBundle());
}

TEST(ComplementarityTest, MonotoneOnlyStillRejectsNonMonotone) {
  UtilityConfigBuilder b(2);
  b.SetValidation(BundleValidation::kMonotoneOnly);
  b.SetItemValue(0, 5.0).SetItemValue(1, 1.0);
  b.SetBundleValue(0x3, 4.0);  // below V({0})
  EXPECT_FALSE(std::move(b).Build().ok());
}

TEST(ComplementarityTest, MixedConfigShape) {
  const UtilityConfig c = MakeMixedComplementConfig();
  EXPECT_TRUE(c.HasComplementaryBundle());
  EXPECT_FALSE(c.IsPureCompetition());
  EXPECT_NEAR(c.DetUtility(0x3), 1.8, 1e-9);   // phone + case
  EXPECT_NEAR(c.DetUtility(0x5), -2.5, 1e-9);  // phone vs phone2
  EXPECT_NEAR(c.DetUtility(0x6), 1.3, 1e-9);   // phone2 + case
  // Submodular configs never flag complementarity.
  EXPECT_FALSE(MakeConfigC3().HasComplementaryBundle());
  EXPECT_FALSE(MakeLastFmConfig().HasComplementaryBundle());
}

TEST(ComplementarityTest, CaseOwnerUpgradesToBundle) {
  // Chain u -> v (prob 1). v is seeded with the case (U = 0.2); u is
  // seeded with the phone. When the phone reaches v, the complementary
  // bundle (U = 1.8) beats keeping the case alone, so v upgrades.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeMixedComplementConfig();
  UicSimulator sim(g, c);
  Allocation alloc(3);
  alloc.Add(0, 0);  // phone at u
  alloc.Add(1, 1);  // case at v
  const WorldOutcome out = sim.RunWorld(
      alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0, 0.0}));
  // u adopts phone (1.0); v adopts case then upgrades to {phone, case}.
  EXPECT_DOUBLE_EQ(out.welfare, 1.0 + 1.8);
  EXPECT_EQ(out.adopters_per_item[0], 2u);
  EXPECT_EQ(out.adopters_per_item[1], 1u);
}

TEST(ComplementarityTest, CompetingPhoneStillBlocked) {
  // v owns phone2; phone arrives later: {phone, phone2} has U = -2.5, so
  // the progressive constraint keeps phone out — competition inside a
  // mixed configuration.
  GraphBuilder b(2);
  b.AddEdge(0, 1, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeMixedComplementConfig();
  UicSimulator sim(g, c);
  Allocation alloc(3);
  alloc.Add(0, 0);  // phone at u
  alloc.Add(1, 2);  // phone2 at v
  const WorldOutcome out = sim.RunWorld(
      alloc, EdgeWorld{1}, WorldUtilityTable(c, {0.0, 0.0, 0.0}));
  EXPECT_DOUBLE_EQ(out.welfare, 1.0 + 0.9);
  EXPECT_EQ(out.adopters_per_item[0], 1u);
  EXPECT_EQ(out.adopters_per_item[2], 1u);
}

TEST(ComplementarityTest, WelfareCanExceedPureCompetitionCeiling) {
  // With complements, per-node welfare can exceed the best singleton —
  // the reachability property of [6] in action on a chain.
  GraphBuilder b(5);
  for (NodeId v = 0; v + 1 < 5; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeMixedComplementConfig();
  WelfareEstimator est(g, c, {.num_worlds = 8, .seed = 3});
  Allocation alloc(3);
  alloc.Add(0, 0);  // phone
  alloc.Add(0, 1);  // case co-seeded
  // Every node adopts the bundle: welfare = 5 * 1.8 > 5 * U(phone).
  EXPECT_DOUBLE_EQ(est.Welfare(alloc), 9.0);
}

TEST(ComplementarityTest, SeqGrdRunsOnMixedConfig) {
  // No guarantee applies, but the pipeline must run end to end.
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 11));
  const UtilityConfig c = MakeMixedComplementConfig();
  AlgoParams params;
  params.imm = {.epsilon = 0.5, .ell = 1.0, .seed = 13};
  params.estimator = {.num_worlds = 200, .seed = 17};
  const Allocation alloc =
      SeqGrd(g, c, Allocation(3), {0, 1, 2}, {5, 5, 5}, params);
  EXPECT_TRUE(alloc.RespectsBudgets({5, 5, 5}));
  WelfareEstimator est(g, c, {.num_worlds = 500, .seed = 19});
  EXPECT_GT(est.Welfare(alloc), 0.0);
}

}  // namespace
}  // namespace cwm
