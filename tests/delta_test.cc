// Tests for the dynamic-graph delta subsystem: .cwd round-trips (empty,
// duplicate, and mutually cancelling edits), overlay composition vs a
// from-scratch rebuild, chain sidecars, truncated/corrupt file rejection
// (including the store.delta.validate failpoint), RR-era invalidation
// accounting (clean sets reused verbatim, dirty sets resampled
// bit-identically), patched world snapshots / packed sets vs cold
// rebuilds, and Engine::ApplyDelta — equivalence across every registered
// allocator at 1 and 8 threads, plus atomicity under concurrent
// Allocate traffic.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.h"
#include "api/registry.h"
#include "delta/delta_log.h"
#include "delta/overlay.h"
#include "delta/rr_patch.h"
#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "rrset/imm.h"
#include "rrset/rr_pipeline.h"
#include "rrset/rr_sampler.h"
#include "simulate/packed_world.h"
#include "simulate/world.h"
#include "simulate/world_pool.h"
#include "store/artifact_cache.h"
#include "store/graph_store.h"
#include "support/failpoint.h"
#include "support/rng.h"

namespace cwm {
namespace {

std::string UniqueTempPath(const std::string& stem) {
  static const uint64_t token = std::random_device{}();
  static std::atomic<uint64_t> next{0};
  return (std::filesystem::path(::testing::TempDir()) /
          (stem + "_" + std::to_string(token) + "_" +
           std::to_string(next.fetch_add(1))))
      .string();
}

/// A reproducible sparse digraph (same shape as the api tests).
Graph TestGraph(int n = 150, int edges = 900, uint64_t seed = 42) {
  GraphBuilder b(static_cast<std::size_t>(n));
  Rng rng(seed);
  for (int e = 0; e < edges; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
    if (u == v) continue;
    b.AddEdge(u, v, 0.4 * rng.NextDouble());
  }
  return std::move(b).Build();
}

void ExpectGraphsBitEqual(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  const auto ao = a.RawOutOffsets(), bo = b.RawOutOffsets();
  ASSERT_EQ(ao.size(), bo.size());
  for (std::size_t i = 0; i < ao.size(); ++i) EXPECT_EQ(ao[i], bo[i]);
  const auto ae = a.RawOutEdges(), be = b.RawOutEdges();
  for (std::size_t e = 0; e < ae.size(); ++e) {
    EXPECT_EQ(ae[e].to, be[e].to);
    EXPECT_EQ(ae[e].prob, be[e].prob);
  }
  EXPECT_EQ(GraphContentHash(a), GraphContentHash(b));
}

// ---- splice vs builder-rebuild oracle ----------------------------------

struct RefApplied {
  Graph graph;
  std::vector<NodeId> dirty;
  EdgeId first_dirty_edge = 0;
};

/// Reference composition: the original sort/dedup GraphBuilder rebuild of
/// base+log. ApplyDeltaToGraph now splices the CSR arrays instead; this
/// oracle pins the splice to the rebuild semantics bit for bit.
RefApplied ReferenceApply(const Graph& base, const DeltaLog& log) {
  enum class Intent { kAbsent, kPresent, kReweight };
  struct Folded {
    Intent intent;
    float prob;
    bool consumed = false;
  };
  auto key = [](NodeId u, NodeId v) {
    return (static_cast<uint64_t>(u) << 32) | v;
  };
  std::unordered_map<uint64_t, Folded> folded;
  for (const DeltaEdit& e : log.edits) {
    auto [it, inserted] =
        folded.try_emplace(key(e.from, e.to), Folded{Intent::kReweight, e.prob});
    Folded& slot = it->second;
    switch (static_cast<DeltaOp>(e.op)) {
      case DeltaOp::kInsert:
        slot = Folded{Intent::kPresent, e.prob};
        break;
      case DeltaOp::kDelete:
        slot = Folded{Intent::kAbsent, 0.0f};
        break;
      case DeltaOp::kReweight:
        if (inserted || slot.intent != Intent::kAbsent) slot.prob = e.prob;
        break;
    }
  }
  const auto offsets = base.RawOutOffsets();
  const std::size_t n = base.num_nodes();
  GraphBuilder builder(n);
  RefApplied ref;
  ref.first_dirty_edge = static_cast<EdgeId>(base.num_edges());
  auto mark_dirty = [&](NodeId u, NodeId v) {
    ref.dirty.push_back(v);
    ref.first_dirty_edge =
        std::min(ref.first_dirty_edge, static_cast<EdgeId>(offsets[u]));
  };
  for (NodeId u = 0; u < n; ++u) {
    for (const OutEdge& out : base.OutEdges(u)) {
      const auto it = folded.find(key(u, out.to));
      if (it == folded.end()) {
        builder.AddEdge(u, out.to, out.prob);
        continue;
      }
      it->second.consumed = true;
      if (it->second.intent == Intent::kAbsent) {
        mark_dirty(u, out.to);
        continue;
      }
      builder.AddEdge(u, out.to, it->second.prob);
      if (it->second.prob != out.prob) mark_dirty(u, out.to);
    }
  }
  for (const auto& [k, f] : folded) {
    if (f.consumed || f.intent != Intent::kPresent) continue;
    const NodeId u = static_cast<NodeId>(k >> 32);
    const NodeId v = static_cast<NodeId>(k & 0xFFFFFFFFull);
    builder.AddEdge(u, v, f.prob);
    mark_dirty(u, v);
  }
  std::sort(ref.dirty.begin(), ref.dirty.end());
  ref.dirty.erase(std::unique(ref.dirty.begin(), ref.dirty.end()),
                  ref.dirty.end());
  ref.graph = std::move(builder).Build();
  return ref;
}

/// Both CSR directions byte-equal, plus the forward-id invariant: every
/// in-entry's id must point at the matching forward slot.
void ExpectCsrBitEqual(const Graph& got, const Graph& want) {
  ASSERT_EQ(got.num_nodes(), want.num_nodes());
  ASSERT_EQ(got.num_edges(), want.num_edges());
  const auto go = got.RawOutOffsets(), wo = want.RawOutOffsets();
  ASSERT_EQ(go.size(), wo.size());
  for (std::size_t i = 0; i < go.size(); ++i) ASSERT_EQ(go[i], wo[i]) << i;
  const auto ge = got.RawOutEdges(), we = want.RawOutEdges();
  for (std::size_t e = 0; e < ge.size(); ++e) {
    ASSERT_EQ(ge[e].to, we[e].to) << e;
    ASSERT_EQ(ge[e].prob, we[e].prob) << e;
  }
  const auto gi = got.RawInOffsets(), wi = want.RawInOffsets();
  ASSERT_EQ(gi.size(), wi.size());
  for (std::size_t i = 0; i < gi.size(); ++i) ASSERT_EQ(gi[i], wi[i]) << i;
  const auto gn = got.RawInEdges(), wn = want.RawInEdges();
  for (std::size_t e = 0; e < gn.size(); ++e) {
    ASSERT_EQ(gn[e].from, wn[e].from) << e;
    ASSERT_EQ(gn[e].prob, wn[e].prob) << e;
    ASSERT_EQ(gn[e].id, wn[e].id) << e;
  }
  for (NodeId v = 0; v < got.num_nodes(); ++v) {
    for (const InEdge& in : got.InEdges(v)) {
      ASSERT_LT(in.id, got.num_edges());
      ASSERT_EQ(got.RawOutEdges()[in.id].to, v);
      ASSERT_EQ(got.RawOutEdges()[in.id].prob, in.prob);
      ASSERT_GE(in.id, got.RawOutOffsets()[in.from]);
      ASSERT_LT(in.id, got.RawOutOffsets()[in.from + 1]);
    }
  }
  EXPECT_EQ(GraphContentHash(got), GraphContentHash(want));
}

TEST(DeltaSpliceTest, SpliceMatchesBuilderRebuildBitForBit) {
  const Graph graphs[] = {TestGraph(), TestGraph(1000, 20000, 9),
                          TestGraph(40, 120, 3)};
  for (const Graph& base : graphs) {
    for (const uint64_t seed : {1u, 5u, 99u}) {
      // 600 edits on the small graphs exceeds the edge count, forcing
      // heavy insert/delete/reweight collisions through the fold.
      for (const std::size_t edits : {std::size_t{1}, std::size_t{10},
                                      std::size_t{600}}) {
        const DeltaLog log = GenerateChurnDelta(base, seed, edits);
        StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(base, log);
        ASSERT_TRUE(applied.ok()) << applied.status().ToString();
        const RefApplied ref = ReferenceApply(base, log);
        ExpectCsrBitEqual(applied.value().graph, ref.graph);
        EXPECT_EQ(applied.value().dirty_nodes, ref.dirty);
        EXPECT_EQ(applied.value().first_dirty_edge, ref.first_dirty_edge);
        EXPECT_EQ(applied.value().result_hash, GraphContentHash(ref.graph));
      }
    }
  }
}

TEST(DeltaSpliceTest, HandCraftedEditsMatchReference) {
  // A tiny graph exercising every structural case: delete an absent
  // edge, reweight an absent edge, upsert to the identical probability,
  // insert into an isolated node, cancelling insert/delete pairs, and
  // inserts at both ends of an adjacency list.
  GraphBuilder b(6);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(0, 3, 0.25);
  b.AddEdge(1, 2, 0.125);
  b.AddEdge(3, 0, 0.75);
  const Graph base = std::move(b).Build();

  DeltaLog log;
  log.num_nodes = base.num_nodes();
  auto push = [&](DeltaOp op, NodeId u, NodeId v, float p) {
    DeltaEdit e;
    e.op = static_cast<uint32_t>(op);
    e.from = u;
    e.to = v;
    e.prob = p;
    log.edits.push_back(e);
  };
  push(DeltaOp::kDelete, 2, 4, 0.0f);           // absent: no-op
  push(DeltaOp::kReweight, 4, 5, 0.5f);         // absent: no-op
  push(DeltaOp::kInsert, 0, 1, 0.5f);           // upsert, same prob: clean
  push(DeltaOp::kInsert, 5, 2, 0.0625f);        // isolated source
  push(DeltaOp::kInsert, 1, 4, 0.5f);           // insert then delete:
  push(DeltaOp::kDelete, 1, 4, 0.0f);           //   cancels to absent
  push(DeltaOp::kDelete, 0, 3, 0.0f);           // real delete
  push(DeltaOp::kInsert, 1, 0, 0.5f);           // before existing neighbor
  push(DeltaOp::kInsert, 1, 5, 0.5f);           // after existing neighbor
  push(DeltaOp::kReweight, 3, 0, 0.875f);       // real reweight

  StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(base, log);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();
  const RefApplied ref = ReferenceApply(base, log);
  ExpectCsrBitEqual(applied.value().graph, ref.graph);
  EXPECT_EQ(applied.value().dirty_nodes, ref.dirty);
  EXPECT_EQ(applied.value().first_dirty_edge, ref.first_dirty_edge);
}

// ---- .cwd round-trips --------------------------------------------------

TEST(DeltaLogTest, RoundTripsThroughDisk) {
  const Graph g = TestGraph();
  DeltaLog log = GenerateChurnDelta(g, 7, 25);
  EXPECT_EQ(log.edits.size(), 25u);
  EXPECT_EQ(log.num_nodes, g.num_nodes());
  EXPECT_EQ(log.base_hash, GraphContentHash(g));

  const std::string path = UniqueTempPath("delta") + ".cwd";
  ASSERT_TRUE(WriteDeltaFile(log, path).ok());
  const StatusOr<DeltaLog> back = OpenDeltaFile(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().num_nodes, log.num_nodes);
  EXPECT_EQ(back.value().base_hash, log.base_hash);
  ASSERT_EQ(back.value().edits.size(), log.edits.size());
  for (std::size_t i = 0; i < log.edits.size(); ++i) {
    EXPECT_EQ(back.value().edits[i].op, log.edits[i].op);
    EXPECT_EQ(back.value().edits[i].from, log.edits[i].from);
    EXPECT_EQ(back.value().edits[i].to, log.edits[i].to);
    EXPECT_EQ(back.value().edits[i].prob, log.edits[i].prob);
  }
  EXPECT_EQ(DeltaLogHash(back.value()), DeltaLogHash(log));
  EXPECT_TRUE(VerifyDeltaFile(path).ok());

  const StatusOr<DeltaFileHeader> header = ReadDeltaHeader(path);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().num_edits, 25u);
  std::filesystem::remove(path);
}

TEST(DeltaLogTest, EmptyLogRoundTripsAndComposesToIdentity) {
  const Graph g = TestGraph();
  DeltaLog log;
  log.num_nodes = g.num_nodes();
  const std::string path = UniqueTempPath("delta_empty") + ".cwd";
  ASSERT_TRUE(WriteDeltaFile(log, path).ok());
  const StatusOr<DeltaLog> back = OpenDeltaFile(path);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back.value().edits.empty());

  const StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(g, back.value());
  ASSERT_TRUE(applied.ok());
  ExpectGraphsBitEqual(applied.value().graph, g);
  EXPECT_TRUE(applied.value().dirty_nodes.empty());
  // A no-op log leaves the whole edge array clean.
  EXPECT_EQ(applied.value().first_dirty_edge, g.num_edges());
  std::filesystem::remove(path);
}

TEST(DeltaLogTest, ChurnGenerationIsDeterministic) {
  const Graph g = TestGraph();
  const DeltaLog a = GenerateChurnDelta(g, 99, 40);
  const DeltaLog b = GenerateChurnDelta(g, 99, 40);
  EXPECT_EQ(DeltaLogHash(a), DeltaLogHash(b));
  const DeltaLog c = GenerateChurnDelta(g, 100, 40);
  EXPECT_NE(DeltaLogHash(a), DeltaLogHash(c));
}

TEST(DeltaLogTest, WriteRejectsMalformedEdits) {
  DeltaLog log;
  log.num_nodes = 10;
  log.edits.push_back({0, 3, 3, 0.5f});  // self-loop
  EXPECT_EQ(WriteDeltaFile(log, UniqueTempPath("bad") + ".cwd").code(),
            Status::Code::kInvalidArgument);
  log.edits[0] = {0, 3, 99, 0.5f};  // endpoint out of range
  EXPECT_FALSE(WriteDeltaFile(log, UniqueTempPath("bad") + ".cwd").ok());
  log.edits[0] = {0, 3, 4, 1.5f};  // probability out of range
  EXPECT_FALSE(WriteDeltaFile(log, UniqueTempPath("bad") + ".cwd").ok());
  log.edits[0] = {7, 3, 4, 0.5f};  // unknown op
  EXPECT_FALSE(WriteDeltaFile(log, UniqueTempPath("bad") + ".cwd").ok());
}

TEST(DeltaLogTest, TruncationAtEveryBoundaryIsRejected) {
  const Graph g = TestGraph();
  const DeltaLog log = GenerateChurnDelta(g, 3, 10);
  const std::string path = UniqueTempPath("trunc") + ".cwd";
  ASSERT_TRUE(WriteDeltaFile(log, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_EQ(bytes.size(), sizeof(DeltaFileHeader) + 10 * sizeof(DeltaEdit));

  for (std::size_t cut :
       {std::size_t{0}, std::size_t{7}, sizeof(DeltaFileHeader) - 1,
        sizeof(DeltaFileHeader), sizeof(DeltaFileHeader) + 3,
        bytes.size() - sizeof(DeltaEdit), bytes.size() - 1}) {
    const std::string cut_path = UniqueTempPath("cut") + ".cwd";
    std::ofstream out(cut_path, std::ios::binary);
    out.write(bytes.data(), static_cast<std::streamsize>(cut));
    out.close();
    EXPECT_FALSE(OpenDeltaFile(cut_path).ok()) << "cut at " << cut;
    std::filesystem::remove(cut_path);
  }

  // A flipped payload byte fails the checksum even at full length.
  std::string corrupt = bytes;
  corrupt[sizeof(DeltaFileHeader) + 5] ^= 0x40;
  const std::string corrupt_path = UniqueTempPath("corrupt") + ".cwd";
  std::ofstream out(corrupt_path, std::ios::binary);
  out.write(corrupt.data(), static_cast<std::streamsize>(corrupt.size()));
  out.close();
  EXPECT_EQ(OpenDeltaFile(corrupt_path).status().code(),
            Status::Code::kCorruption);
  std::filesystem::remove(corrupt_path);
  std::filesystem::remove(path);
}

TEST(DeltaLogTest, ValidateFailpointInjectsOpenFailure) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  const Graph g = TestGraph();
  const std::string path = UniqueTempPath("failpoint") + ".cwd";
  ASSERT_TRUE(WriteDeltaFile(GenerateChurnDelta(g, 1, 4), path).ok());
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(
      failpoints.Set("store.delta.validate", "1*error(corruption)").ok());
  EXPECT_EQ(OpenDeltaFile(path).status().code(), Status::Code::kCorruption);
  // Exhausted: the next open succeeds on the same healthy bytes.
  EXPECT_TRUE(OpenDeltaFile(path).ok());
  failpoints.Clear("store.delta.validate");
  std::filesystem::remove(path);
}

// ---- Composition -------------------------------------------------------

TEST(DeltaApplyTest, DuplicateAndCancellingEditsFoldInLogOrder) {
  GraphBuilder b(6);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  b.AddEdge(2, 3, 0.75);
  const Graph base = std::move(b).Build();

  DeltaLog log;
  log.num_nodes = 6;
  using enum DeltaOp;
  // 0->1: reweight twice — the later value wins.
  log.edits.push_back({static_cast<uint32_t>(kReweight), 0, 1, 0.9f});
  log.edits.push_back({static_cast<uint32_t>(kReweight), 0, 1, 0.6f});
  // 1->2: delete then insert — net effect is the re-inserted edge.
  log.edits.push_back({static_cast<uint32_t>(kDelete), 1, 2, 0.0f});
  log.edits.push_back({static_cast<uint32_t>(kInsert), 1, 2, 0.4f});
  // 4->5: insert then delete — net effect is no edge (a reverse edit).
  log.edits.push_back({static_cast<uint32_t>(kInsert), 4, 5, 0.3f});
  log.edits.push_back({static_cast<uint32_t>(kDelete), 4, 5, 0.0f});
  // 2->3: delete then reweight — stays deleted.
  log.edits.push_back({static_cast<uint32_t>(kDelete), 2, 3, 0.0f});
  log.edits.push_back({static_cast<uint32_t>(kReweight), 2, 3, 0.1f});
  // 3->4: reweight of an absent edge — a no-op.
  log.edits.push_back({static_cast<uint32_t>(kReweight), 3, 4, 0.2f});

  const StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(base, log);
  ASSERT_TRUE(applied.ok()) << applied.status().ToString();

  GraphBuilder want(6);
  want.AddEdge(0, 1, 0.6f);
  want.AddEdge(1, 2, 0.4f);
  const Graph expect = std::move(want).Build();
  ExpectGraphsBitEqual(applied.value().graph, expect);
  // Dirty vertices: the `to` endpoints of the effective changes only —
  // the cancelled 4->5 insert and the absent-edge edits contribute none.
  const std::vector<NodeId> dirty(applied.value().dirty_nodes.begin(),
                                  applied.value().dirty_nodes.end());
  EXPECT_EQ(dirty, (std::vector<NodeId>{1, 2, 3}));
  EXPECT_EQ(applied.value().first_dirty_edge, 0u);
}

TEST(DeltaApplyTest, RejectsWrongUniverseAndWrongBase) {
  const Graph g = TestGraph();
  DeltaLog log;
  log.num_nodes = g.num_nodes() + 1;
  EXPECT_EQ(ApplyDeltaToGraph(g, log).status().code(),
            Status::Code::kInvalidArgument);
  log.num_nodes = g.num_nodes();
  log.base_hash = 0xDEAD;
  EXPECT_EQ(ApplyDeltaToGraph(g, log).status().code(),
            Status::Code::kInvalidArgument);
  log.base_hash = 0;
  log.result_hash = 0xBEEF;  // recorded result must match the composition
  log.edits.push_back({static_cast<uint32_t>(DeltaOp::kDelete), 0, 1, 0.0f});
  EXPECT_EQ(ApplyDeltaToGraph(g, log).status().code(),
            Status::Code::kCorruption);
}

TEST(DeltaOverlayTest, ChainComposesAndCompactsToIdenticalBytes) {
  const Graph base = TestGraph();
  DeltaOverlay overlay(TestGraph());
  ASSERT_TRUE(overlay.Apply(GenerateChurnDelta(overlay.graph(), 1, 15)).ok());
  ASSERT_TRUE(overlay.Apply(GenerateChurnDelta(overlay.graph(), 2, 15)).ok());
  EXPECT_EQ(overlay.chain().size(), 2u);
  EXPECT_EQ(overlay.total_edits(), 30u);
  EXPECT_TRUE(overlay.ShouldCompact(29));
  EXPECT_FALSE(overlay.ShouldCompact(30));

  // One-shot replay of the same logs lands on the same composition and
  // the same recipe hash (the chain fold is path-independent).
  DeltaOverlay replay(TestGraph());
  ASSERT_TRUE(replay.Apply(GenerateChurnDelta(base, 1, 15)).ok());
  ASSERT_TRUE(
      replay.Apply(GenerateChurnDelta(replay.graph(), 2, 15)).ok());
  EXPECT_EQ(replay.content_hash(), overlay.content_hash());
  EXPECT_EQ(replay.recipe_hash(), overlay.recipe_hash());

  // Compact() materializes the overlay; the reopened graph is the
  // composition bit for bit, and the overlay keeps serving unchanged.
  const std::string path = UniqueTempPath("compact") + ".cwg";
  ASSERT_TRUE(overlay.Compact(path).ok());
  uint64_t stored_hash = 0;
  const StatusOr<Graph> reopened = OpenGraphFile(path, &stored_hash);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectGraphsBitEqual(reopened.value(), overlay.graph());
  EXPECT_EQ(stored_hash, overlay.content_hash());
  const StatusOr<GraphFileHeader> header = ReadGraphHeader(path);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().recipe_hash, overlay.recipe_hash());
  std::filesystem::remove(path);
}

TEST(DeltaOverlayTest, ChainSidecarRoundTrips) {
  DeltaOverlay overlay(TestGraph());
  ASSERT_TRUE(overlay.Apply(GenerateChurnDelta(overlay.graph(), 5, 8)).ok());
  ASSERT_TRUE(overlay.Apply(GenerateChurnDelta(overlay.graph(), 6, 8)).ok());
  const std::string path = UniqueTempPath("sidecar") + ".cwg";
  ASSERT_TRUE(overlay.Compact(path).ok());
  DeltaChainFile chain;
  chain.base_hash = overlay.base_hash();
  chain.links = overlay.chain();
  ASSERT_TRUE(WriteChainSidecar(path, chain).ok());

  const StatusOr<DeltaChainFile> back = ReadChainSidecar(path);
  ASSERT_TRUE(back.ok()) << back.status().ToString();
  EXPECT_EQ(back.value().base_hash, chain.base_hash);
  ASSERT_EQ(back.value().links.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(back.value().links[i].log_hash, chain.links[i].log_hash);
    EXPECT_EQ(back.value().links[i].num_edits, chain.links[i].num_edits);
    EXPECT_EQ(back.value().links[i].dirty_count, chain.links[i].dirty_count);
    EXPECT_EQ(back.value().links[i].result_hash, chain.links[i].result_hash);
  }
  EXPECT_EQ(ReadChainSidecar(UniqueTempPath("absent")).status().code(),
            Status::Code::kNotFound);
  std::filesystem::remove(path);
  std::filesystem::remove(path + ".chain");
}

// ---- Incremental world materialization ---------------------------------

TEST(DeltaWorldTest, PatchedSnapshotBitIdenticalToColdBuild) {
  const Graph base = TestGraph();
  const UtilityConfig config = MakeConfigC1();
  const StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(base, GenerateChurnDelta(base, 11, 20));
  ASSERT_TRUE(applied.ok());
  const Graph& next = applied.value().graph;
  const EdgeId watermark = applied.value().first_dirty_edge;
  ASSERT_LT(watermark, base.num_edges());  // the churn touched something

  const uint64_t seed = 0x5EED;
  for (int w = 0; w < 6; ++w) {
    const WorldSnapshot prior(base, config, WorldEdgeSeedOf(seed, w),
                              WorldNoiseRngOf(seed, w));
    const WorldSnapshot cold(next, config, WorldEdgeSeedOf(seed, w),
                             WorldNoiseRngOf(seed, w));
    const WorldSnapshot patched(next, prior, WorldEdgeSeedOf(seed, w),
                                watermark);
    ASSERT_EQ(patched.live_edges(), cold.live_edges()) << "world " << w;
    for (NodeId u = 0; u < next.num_nodes(); ++u) {
      const auto a = cold.LiveOut(u), b = patched.LiveOut(u);
      ASSERT_EQ(a.size(), b.size()) << "world " << w << " node " << u;
      for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
    }
    for (int s = 0; s < (1 << config.num_items()); ++s) {
      EXPECT_EQ(patched.utilities().Utility(static_cast<ItemSet>(s)),
                cold.utilities().Utility(static_cast<ItemSet>(s)));
    }
  }
}

TEST(DeltaWorldTest, PatchedPackedSetBitIdenticalToColdBuild) {
  const Graph base = TestGraph();
  const StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(base, GenerateChurnDelta(base, 13, 20));
  ASSERT_TRUE(applied.ok());
  const Graph& next = applied.value().graph;
  const UtilityConfig config = MakeConfigC1();
  const uint64_t seed = 0xACE;
  const int num_worlds = 130;
  const std::size_t chunks = 2;

  const PackedWorldSet prior(base, config, seed, num_worlds, chunks, 4);
  const PackedWorldSet cold(next, config, seed, num_worlds, chunks, 4);
  const PackedWorldSet patched(next, prior, seed,
                               applied.value().first_dirty_edge, 4);
  ASSERT_EQ(patched.chunks(), cold.chunks());
  ASSERT_EQ(patched.num_worlds(), cold.num_worlds());
  for (std::size_t c = 0; c < chunks; ++c) {
    const auto a = cold.ChunkBlocks(c), b = patched.ChunkBlocks(c);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t blk = 0; blk < a.size(); ++blk) {
      EXPECT_EQ(a[blk].lane_count, b[blk].lane_count);
      EXPECT_EQ(a[blk].lane_mask, b[blk].lane_mask);
      EXPECT_EQ(a[blk].edge_mask, b[blk].edge_mask);
      EXPECT_EQ(a[blk].utility, b[blk].utility);
      EXPECT_EQ(a[blk].adopt_plane, b[blk].adopt_plane);
      EXPECT_EQ(a[blk].adopt_changed, b[blk].adopt_changed);
    }
  }
}

// ---- RR-era invalidation -----------------------------------------------

TEST(DeltaRrPatchTest, CleanSetsReusedDirtySetsResampledBitIdentically) {
  const Graph base = TestGraph(300, 1800, 5);
  const uint64_t base_hash = GraphContentHash(base);
  const StatusOr<AppliedDelta> applied =
      ApplyDeltaToGraph(base, GenerateChurnDelta(base, 17, 12), base_hash);
  ASSERT_TRUE(applied.ok());
  const Graph& next = applied.value().graph;
  const uint64_t next_hash = applied.value().result_hash;
  ASSERT_NE(next_hash, base_hash);

  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(UniqueTempPath("rrcache"));
  ASSERT_TRUE(cache.ok());

  // A base-graph era sampled exactly the way the pipeline does.
  const uint64_t sample_seed = 0x1D;
  const std::size_t num_sets = 400;
  RrProvenance provenance;
  provenance.graph_hash = base_hash;
  provenance.sample_seed = sample_seed;
  provenance.source_id = kStandardRrSourceId;
  provenance.era_start = 0;
  {
    RrCollection era(base.num_nodes());
    RrSampler sampler(base);
    std::vector<NodeId> out;
    for (std::size_t k = 0; k < num_sets; ++k) {
      Rng rng(MixHash(sample_seed, kRrSampleTag ^ k));
      sampler.SampleStandard(rng, &out);
      era.Add(out, 1.0);
    }
    ASSERT_TRUE(cache.value()
                    ->StoreRrEra(RrRecipeHash(base_hash, kStandardRrSourceId,
                                              sample_seed, 0),
                                 provenance, era)
                    .ok());
  }

  const RrPatchStats stats =
      PatchCachedRrEras(*cache.value(), next, base_hash, next_hash,
                        applied.value().dirty_nodes);
  EXPECT_EQ(stats.eras_scanned, 1u);
  EXPECT_EQ(stats.eras_patched, 1u);
  EXPECT_EQ(stats.sets_reused + stats.sets_resampled, num_sets);
  // Selective invalidation: a 12-edit churn must dirty some sets but
  // nowhere near all of them.
  EXPECT_GT(stats.sets_reused, 0u);
  EXPECT_GT(stats.sets_resampled, 0u);
  EXPECT_LT(stats.sets_resampled, num_sets / 2);

  // The patched era is byte-for-byte the era a cold pipeline would
  // sample on the new graph.
  RrProvenance fresh = provenance;
  fresh.graph_hash = next_hash;
  const std::optional<RrEraData> patched = cache.value()->LoadRrEra(
      RrRecipeHash(next_hash, kStandardRrSourceId, sample_seed, 0), fresh,
      next.num_nodes());
  ASSERT_TRUE(patched.has_value());
  ASSERT_EQ(patched->num_sets(), num_sets);
  RrSampler sampler(next);
  std::vector<NodeId> want;
  for (std::size_t k = 0; k < num_sets; ++k) {
    Rng rng(MixHash(sample_seed, kRrSampleTag ^ k));
    sampler.SampleStandard(rng, &want);
    const std::span<const NodeId> got = patched->members.subspan(
        patched->offsets[k], patched->offsets[k + 1] - patched->offsets[k]);
    ASSERT_EQ(got.size(), want.size()) << "set " << k;
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << "set " << k;
    }
  }
}

TEST(DeltaRrPatchTest, NoOpWhenHashesMatchOrNoErasCached) {
  const Graph g = TestGraph();
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(UniqueTempPath("rrcache_empty"));
  ASSERT_TRUE(cache.ok());
  const RrPatchStats same =
      PatchCachedRrEras(*cache.value(), g, 1, 1, {});
  EXPECT_EQ(same.eras_scanned, 0u);
  const RrPatchStats empty =
      PatchCachedRrEras(*cache.value(), g, 1, 2, {});
  EXPECT_EQ(empty.eras_scanned, 0u);
  EXPECT_EQ(empty.eras_patched, 0u);
}

// ---- Engine::ApplyDelta ------------------------------------------------

AllocateRequest TinyRequest(AlgoKind algo, unsigned threads) {
  AllocateRequest request;
  request.algo = algo;
  request.items = {0, 1};
  request.budgets = {3, 3};
  request.params.imm.seed = 11;
  request.params.estimator = {.num_worlds = 20, .seed = 21,
                              .num_threads = threads};
  request.ranking.seed = 31;
  request.eval = {.num_worlds = 40, .seed = 41, .num_threads = threads};
  return request;
}

TEST(EngineDeltaTest, PostDeltaAllocationsMatchColdRebuildForEveryAlgo) {
  const Graph base = TestGraph();
  const UtilityConfig config = MakeConfigC1();
  const DeltaLog log = GenerateChurnDelta(base, 23, 18);
  const StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(base, log);
  ASSERT_TRUE(applied.ok());

  Engine incremental(base, config);
  ApplyDeltaResult outcome;
  ASSERT_TRUE(incremental.ApplyDelta(log, &outcome).ok());
  EXPECT_EQ(outcome.old_hash, GraphContentHash(base));
  EXPECT_EQ(outcome.new_hash, applied.value().result_hash);
  EXPECT_EQ(outcome.dirty_nodes, applied.value().dirty_nodes.size());
  EXPECT_EQ(incremental.graph_hash(), outcome.new_hash);
  ASSERT_EQ(incremental.delta_chain().size(), 1u);
  EXPECT_EQ(incremental.delta_chain()[0].log_hash, DeltaLogHash(log));

  // A cold engine over the composed graph: every registered allocator at
  // 1 and 8 threads must land on bit-identical results.
  Engine cold(applied.value().graph, config);
  for (AlgoKind algo : AllAlgoKinds()) {
    for (unsigned threads : {1u, 8u}) {
      AllocateResult inc_result, cold_result;
      const Status inc =
          incremental.Allocate(TinyRequest(algo, threads), &inc_result);
      const Status cold_status =
          cold.Allocate(TinyRequest(algo, threads), &cold_result);
      ASSERT_EQ(inc.ok(), cold_status.ok()) << AlgoName(algo);
      if (!inc.ok()) continue;
      EXPECT_EQ(inc_result.skipped, cold_result.skipped) << AlgoName(algo);
      EXPECT_EQ(inc_result.allocation.ToString(),
                cold_result.allocation.ToString())
          << AlgoName(algo) << " threads=" << threads;
      EXPECT_EQ(inc_result.stats.welfare, cold_result.stats.welfare)
          << AlgoName(algo) << " threads=" << threads;
    }
  }
  // Patching telemetry: the evaluator pools of the post-delta runs were
  // served incrementally from the pre-delta pools where one existed.
  EXPECT_GE(incremental.pool_stats().pools_built, 1u);
}

TEST(EngineDeltaTest, PoolsArePatchedAcrossDelta) {
  const Graph base = TestGraph();
  const UtilityConfig config = MakeConfigC1();
  Engine engine(base, config);
  AllocateResult result;
  // Warm the keyed pool store on the pre-delta graph.
  ASSERT_TRUE(
      engine.Allocate(TinyRequest(AlgoKind::kSeqGrdNm, 1), &result).ok());
  const uint64_t built_before = engine.pool_stats().pools_built;
  ASSERT_TRUE(engine.ApplyDelta(GenerateChurnDelta(base, 29, 10)).ok());
  ASSERT_TRUE(
      engine.Allocate(TinyRequest(AlgoKind::kSeqGrdNm, 1), &result).ok());
  EXPECT_GT(engine.pool_stats().pools_built, built_before);
  EXPECT_GE(engine.pool_stats().pools_patched, 1u);
}

TEST(EngineDeltaTest, ApplyDeltaIsAtomicUnderConcurrentAllocates) {
  const Graph base = TestGraph();
  const UtilityConfig config = MakeConfigC1();
  Engine engine(base, config);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < 4; ++t) {
    workers.emplace_back([&engine, &stop, &failures] {
      while (!stop.load(std::memory_order_relaxed)) {
        AllocateResult result;
        const Status status =
            engine.Allocate(TinyRequest(AlgoKind::kSeqGrdNm, 2), &result);
        if (!status.ok() || result.allocation.TotalPairs() != 6u) {
          failures.fetch_add(1);
        }
      }
    });
  }
  // Three deltas land while allocations are in flight; every allocation
  // must see a consistent graph (pinned at entry) and succeed.
  Graph current = TestGraph();
  for (uint64_t round = 0; round < 3; ++round) {
    const DeltaLog log = GenerateChurnDelta(current, 31 + round, 8);
    StatusOr<AppliedDelta> applied = ApplyDeltaToGraph(current, log);
    ASSERT_TRUE(applied.ok());
    ASSERT_TRUE(engine.ApplyDelta(log).ok());
    current = std::move(applied.value().graph);
  }
  stop.store(true);
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(engine.delta_chain().size(), 3u);
  EXPECT_EQ(engine.graph_hash(), GraphContentHash(current));

  // The engine's post-churn allocations equal a cold engine's.
  Engine cold(current, config);
  AllocateResult warm_result, cold_result;
  ASSERT_TRUE(
      engine.Allocate(TinyRequest(AlgoKind::kSeqGrd, 2), &warm_result).ok());
  ASSERT_TRUE(
      cold.Allocate(TinyRequest(AlgoKind::kSeqGrd, 2), &cold_result).ok());
  EXPECT_EQ(warm_result.allocation.ToString(),
            cold_result.allocation.ToString());
  EXPECT_EQ(warm_result.stats.welfare, cold_result.stats.welfare);
}

}  // namespace
}  // namespace cwm
