// Artifact-store tests: binary round-trips (bit-identical), corruption
// rejection, the content-addressed cache, and the cache's end-to-end
// determinism guarantee (hit vs. miss produce identical seeds/estimates).
#include <atomic>
#include <bit>
#include <chrono>
#include <cstdio>
#include <random>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/networks.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "graph/loader.h"
#include "rrset/imm.h"
#include "rrset/prima_plus.h"
#include "rrset/rr_sampler.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "store/artifact_cache.h"
#include "store/format.h"
#include "store/graph_store.h"
#include "store/mapped_file.h"
#include "store/rr_store.h"
#include "support/failpoint.h"

namespace cwm {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique across concurrent test processes (e.g. build/ and
    // build-asan/ ctest sharing one /tmp) and across fixtures within a
    // process — a heap address alone is neither, and random_device
    // avoids a POSIX-only getpid dependency.
    static const uint64_t process_token = std::random_device{}();
    static std::atomic<uint64_t> counter{0};
    dir_ = fs::path(::testing::TempDir()) /
           ("cwm_store_" + std::to_string(process_token) + "_" +
            std::to_string(counter.fetch_add(1)));
    fs::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

void ExpectGraphsBitIdentical(const Graph& a, const Graph& b) {
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.RawOutOffsets().size(), b.RawOutOffsets().size());
  for (std::size_t i = 0; i < a.RawOutOffsets().size(); ++i) {
    ASSERT_EQ(a.RawOutOffsets()[i], b.RawOutOffsets()[i]) << i;
    ASSERT_EQ(a.RawInOffsets()[i], b.RawInOffsets()[i]) << i;
  }
  for (std::size_t i = 0; i < a.num_edges(); ++i) {
    ASSERT_EQ(a.RawOutEdges()[i].to, b.RawOutEdges()[i].to) << i;
    // Bit-level float compare: the store must not perturb probabilities.
    ASSERT_EQ(std::bit_cast<uint32_t>(a.RawOutEdges()[i].prob),
              std::bit_cast<uint32_t>(b.RawOutEdges()[i].prob))
        << i;
    ASSERT_EQ(a.RawInEdges()[i].from, b.RawInEdges()[i].from) << i;
    ASSERT_EQ(a.RawInEdges()[i].id, b.RawInEdges()[i].id) << i;
  }
  ASSERT_EQ(GraphContentHash(a), GraphContentHash(b));
}

TEST_F(StoreTest, GraphRoundTripIsBitIdentical) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(500, 3, 7));
  const std::string path = Path("g.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path, /*recipe_hash=*/42).ok());

  StatusOr<Graph> opened = OpenGraphFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE(opened.value().is_external());
  EXPECT_FALSE(g.is_external());
  ExpectGraphsBitIdentical(g, opened.value());

  StatusOr<GraphFileHeader> header = ReadGraphHeader(path);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().recipe_hash, 42u);
  EXPECT_EQ(header.value().num_nodes, g.num_nodes());
  EXPECT_TRUE(VerifyGraphFile(path).ok());
}

TEST_F(StoreTest, GraphRoundTripSparseLoaderIdsAndIsolatedNodes) {
  // Sparse source ids (densified by the loader) and a node universe with
  // isolated nodes (GraphBuilder with unused slots).
  const std::string edges = Path("edges.txt");
  {
    std::ofstream out(edges);
    out << "# sparse ids\n1000000 5 0.5\n5 70000 0.25\n";
  }
  LoadOptions options;
  options.default_prob = 0.1;
  StatusOr<Graph> loaded = ReadEdgeList(edges, options);
  ASSERT_TRUE(loaded.ok());

  const std::string path = Path("sparse.cwg");
  ASSERT_TRUE(WriteGraphFile(loaded.value(), path).ok());
  StatusOr<Graph> opened = OpenGraphFile(path);
  ASSERT_TRUE(opened.ok());
  ExpectGraphsBitIdentical(loaded.value(), opened.value());

  GraphBuilder builder(10);  // nodes 3..9 isolated
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(2, 1, 0.125);
  const Graph sparse = std::move(builder).Build();
  const std::string path2 = Path("isolated.cwg");
  ASSERT_TRUE(WriteGraphFile(sparse, path2).ok());
  StatusOr<Graph> opened2 = OpenGraphFile(path2);
  ASSERT_TRUE(opened2.ok());
  ExpectGraphsBitIdentical(sparse, opened2.value());
  EXPECT_EQ(opened2.value().OutDegree(9), 0u);
}

TEST_F(StoreTest, EmptyGraphRoundTrips) {
  const std::string path = Path("empty.cwg");
  ASSERT_TRUE(WriteGraphFile(Graph{}, path).ok());
  StatusOr<Graph> opened = OpenGraphFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(opened.value().num_nodes(), 0u);
  EXPECT_EQ(opened.value().num_edges(), 0u);
  EXPECT_TRUE(VerifyGraphFile(path).ok());
}

TEST_F(StoreTest, MappedGraphSurvivesCopyAndMove) {
  const Graph g = WithConstantProb(BarabasiAlbert(200, 2, 9), 0.25);
  const std::string path = Path("copy.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  StatusOr<Graph> opened = OpenGraphFile(path);
  ASSERT_TRUE(opened.ok());

  Graph copy = opened.value();           // shares the mapping
  const Graph moved = std::move(opened).value();
  ExpectGraphsBitIdentical(g, copy);
  ExpectGraphsBitIdentical(g, moved);

  Graph owned_copy = g;  // owning copy re-points spans at its own storage
  ExpectGraphsBitIdentical(g, owned_copy);
}

TEST_F(StoreTest, GraphOpenRejectsCorruption) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(100, 2, 3));
  const std::string path = Path("corrupt.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path).ok());

  // Truncation.
  {
    StatusOr<MappedFile> mapped = MappedFile::Open(path);
    ASSERT_TRUE(mapped.ok());
    std::ofstream out(Path("trunc.cwg"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(mapped.value().data()),
              static_cast<std::streamsize>(mapped.value().size() / 2));
  }
  EXPECT_FALSE(OpenGraphFile(Path("trunc.cwg")).ok());

  // Bad magic.
  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(0);
    io.put('X');
  }
  StatusOr<Graph> bad_magic = OpenGraphFile(path);
  ASSERT_FALSE(bad_magic.ok());
  EXPECT_EQ(bad_magic.status().code(), Status::Code::kCorruption);

  // Bad version (restore magic, bump version halfword at offset 4).
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(4);
    io.put(static_cast<char>(kFormatVersion + 1));
  }
  EXPECT_FALSE(OpenGraphFile(path).ok());

  // Payload bit flip: structural open succeeds, Verify catches it.
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(static_cast<std::streamoff>(sizeof(GraphFileHeader)) +
             static_cast<std::streamoff>(
                 (g.num_nodes() + 2) * sizeof(uint64_t)) +
             5);
    io.put('\x7f');
  }
  EXPECT_TRUE(OpenGraphFile(path).ok());
  const Status verify = VerifyGraphFile(path);
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), Status::Code::kCorruption);

  // An empty file is rejected, not crashed on.
  { std::ofstream out(Path("empty_file.cwg")); }
  EXPECT_FALSE(OpenGraphFile(Path("empty_file.cwg")).ok());
}

TEST_F(StoreTest, GraphOpenRejectsOverflowingHeaderCounts) {
  // num_nodes = 2^61 - 1 makes (num_nodes + 1) * 8 wrap to zero; a naive
  // size check would accept the 64-byte file and then walk a 2^61-entry
  // offsets span over a one-page mapping.
  GraphFileHeader header;
  header.num_nodes = (1ull << 61) - 1;
  header.num_edges = 0;
  header.payload_bytes = 0;
  const std::string path = Path("overflow.cwg");
  {
    std::ofstream out(path, std::ios::binary);
    out.write(reinterpret_cast<const char*>(&header), sizeof(header));
  }
  StatusOr<Graph> opened = OpenGraphFile(path);
  ASSERT_FALSE(opened.ok());
  EXPECT_EQ(opened.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreTest, VerifyCatchesOutOfRangeEdgeEndpoints) {
  // Structure and checksum intact, but an endpoint outside the node
  // universe: only the deep verify pass reads the edge sections.
  GraphBuilder builder(4);
  builder.AddEdge(0, 1, 0.5);
  builder.AddEdge(2, 3, 0.5);
  Graph g = std::move(builder).Build();
  const_cast<OutEdge&>(g.RawOutEdges()[1]).to = 0x7FFFFFFF;
  const std::string path = Path("bad_endpoint.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  EXPECT_TRUE(OpenGraphFile(path).ok());  // structural open cannot see it
  const Status verify = VerifyGraphFile(path);
  ASSERT_FALSE(verify.ok());
  EXPECT_EQ(verify.code(), Status::Code::kCorruption);
}

RrCollection SampleCollection(const Graph& g, std::size_t count,
                              bool with_empty) {
  RrCollection rr(g.num_nodes());
  RrSampler sampler(g);
  Rng rng(13);
  std::vector<NodeId> members;
  for (std::size_t i = 0; i < count; ++i) {
    sampler.SampleStandard(rng, &members);
    if (with_empty && i % 5 == 0) members.clear();  // empty RR sets count
    rr.Add(members, with_empty && i % 3 == 0 ? 0.5 : 1.0);
  }
  return rr;
}

TEST_F(StoreTest, RrRoundTripIsBitIdenticalIncludingEmptySets) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 11));
  const RrCollection rr = SampleCollection(g, 200, /*with_empty=*/true);
  const RrProvenance provenance{.graph_hash = GraphContentHash(g),
                                .sample_seed = 99,
                                .source_id = kStandardRrSourceId,
                                .era_start = 7};
  const std::string path = Path("rr.cwr");
  ASSERT_TRUE(WriteRrFile(rr, provenance, path).ok());

  StatusOr<RrEraData> opened = OpenRrFile(path);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const RrEraData& data = opened.value();
  EXPECT_EQ(data.provenance, provenance);
  ASSERT_EQ(data.num_sets(), rr.size());
  ASSERT_EQ(data.members.size(), rr.TotalMembers());
  for (std::size_t k = 0; k < rr.size(); ++k) {
    ASSERT_EQ(data.offsets[k + 1] - data.offsets[k],
              rr.Members(static_cast<uint32_t>(k)).size());
    ASSERT_EQ(std::bit_cast<uint64_t>(data.weights[k]),
              std::bit_cast<uint64_t>(rr.Weight(static_cast<uint32_t>(k))));
  }
  for (std::size_t i = 0; i < data.members.size(); ++i) {
    ASSERT_EQ(data.members[i], rr.RawMembers()[i]);
  }
  EXPECT_TRUE(VerifyRrFile(path).ok());

  // Provenance mismatch is NotFound (cache treats it as a miss).
  RrProvenance wrong = provenance;
  wrong.sample_seed = 100;
  StatusOr<RrEraData> mismatch = OpenRrFile(path, &wrong, g.num_nodes());
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), Status::Code::kNotFound);
}

TEST_F(StoreTest, RrOpenRejectsCorruption) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(100, 2, 5));
  const RrCollection rr = SampleCollection(g, 50, true);
  const std::string path = Path("rr_corrupt.cwr");
  ASSERT_TRUE(WriteRrFile(rr, {}, path).ok());

  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(0);
    io.put('X');
  }
  EXPECT_FALSE(OpenRrFile(path).ok());

  ASSERT_TRUE(WriteRrFile(rr, {}, path).ok());
  {
    StatusOr<MappedFile> mapped = MappedFile::Open(path);
    ASSERT_TRUE(mapped.ok());
    std::ofstream out(Path("rr_trunc.cwr"), std::ios::binary);
    out.write(reinterpret_cast<const char*>(mapped.value().data()),
              static_cast<std::streamsize>(mapped.value().size() - 8));
  }
  EXPECT_FALSE(OpenRrFile(Path("rr_trunc.cwr")).ok());

  // A corrupted weight must fail the *open* (the cache then treats the
  // entry as a miss) — not abort later inside RrCollection::Add.
  ASSERT_TRUE(WriteRrFile(rr, {}, path).ok());
  {
    const double bad = 7.5;
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(static_cast<std::streamoff>(sizeof(RrFileHeader) +
                                         (rr.size() + 1) * sizeof(uint64_t)));
    io.write(reinterpret_cast<const char*>(&bad), sizeof(bad));
  }
  StatusOr<RrEraData> bad_weight = OpenRrFile(path);
  ASSERT_FALSE(bad_weight.ok());
  EXPECT_EQ(bad_weight.status().code(), Status::Code::kCorruption);
}

TEST_F(StoreTest, CacheGetOrBuildGraphHitsAreBitIdentical) {
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache"));
  ASSERT_TRUE(cache.ok()) << cache.status().ToString();

  int builds = 0;
  const auto build = [&]() -> StatusOr<Graph> {
    ++builds;
    return WithWeightedCascade(BarabasiAlbert(400, 3, 17));
  };
  StatusOr<Graph> cold = cache.value()->GetOrBuildGraph("recipe-a", build);
  ASSERT_TRUE(cold.ok());
  StatusOr<Graph> warm = cache.value()->GetOrBuildGraph("recipe-a", build);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(builds, 1);
  EXPECT_TRUE(warm.value().is_external());
  ExpectGraphsBitIdentical(cold.value(), warm.value());

  // A different recipe builds afresh, even though the first is cached.
  StatusOr<Graph> other = cache.value()->GetOrBuildGraph("recipe-b", build);
  ASSERT_TRUE(other.ok());
  EXPECT_EQ(builds, 2);

  const CacheStats stats = cache.value()->stats();
  EXPECT_EQ(stats.graph_hits, 1u);
  EXPECT_EQ(stats.graph_misses, 2u);
  EXPECT_GT(stats.bytes_written, 0u);
  EXPECT_EQ(cache.value()->List().size(), 2u);
}

TEST_F(StoreTest, CacheGcEvictsDownToBudget) {
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_gc"));
  ASSERT_TRUE(cache.ok());
  for (int i = 0; i < 4; ++i) {
    const auto build = [&]() -> StatusOr<Graph> {
      return WithConstantProb(BarabasiAlbert(100 + 10 * i, 2, i), 0.1);
    };
    ASSERT_TRUE(
        cache.value()
            ->GetOrBuildGraph("gc-recipe-" + std::to_string(i), build)
            .ok());
  }
  ASSERT_EQ(cache.value()->List().size(), 4u);

  // A stale temp file from a killed writer: invisible to List(), but Gc
  // must reclaim it once it is old enough.
  const fs::path stale =
      fs::path(cache.value()->root()) / "graphs" / "dead.cwg.tmp.1.0";
  { std::ofstream out(stale); }
  fs::last_write_time(stale,
                      fs::file_time_type::clock::now() -
                          std::chrono::hours(2));

  const GcResult result = cache.value()->Gc(/*max_bytes=*/1);
  EXPECT_EQ(result.files_removed, 5u);  // 4 entries + the stale temp
  EXPECT_EQ(cache.value()->List().size(), 0u);
  EXPECT_FALSE(fs::exists(stale));

  const GcResult noop = cache.value()->Gc(/*max_bytes=*/1 << 30);
  EXPECT_EQ(noop.files_removed, 0u);
}

TEST_F(StoreTest, CachedEdgeListLoadIsContentKeyed) {
  const std::string edges = Path("snap.txt");
  {
    std::ofstream out(edges);
    out << "0 1 0.5\n1 2 0.25\n2 0 0.125\n";
  }
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_el"));
  ASSERT_TRUE(cache.ok());

  const LoadOptions options;
  StatusOr<Graph> cold =
      ReadEdgeListCached(edges, options, cache.value().get());
  ASSERT_TRUE(cold.ok());
  StatusOr<Graph> warm =
      ReadEdgeListCached(edges, options, cache.value().get());
  ASSERT_TRUE(warm.ok());
  EXPECT_TRUE(warm.value().is_external());
  ExpectGraphsBitIdentical(cold.value(), warm.value());
  EXPECT_EQ(cache.value()->stats().graph_hits, 1u);

  // Editing the file changes the content hash: no stale hit.
  {
    std::ofstream out(edges);
    out << "0 1 0.5\n1 2 0.25\n2 0 0.125\n0 2 1.0\n";
  }
  StatusOr<Graph> edited =
      ReadEdgeListCached(edges, options, cache.value().get());
  ASSERT_TRUE(edited.ok());
  EXPECT_EQ(edited.value().num_edges(), 4u);
  EXPECT_EQ(cache.value()->stats().graph_misses, 2u);
}

TEST_F(StoreTest, GraphHeaderPersistsContentHash) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 3, 29));
  const uint64_t expected = GraphContentHash(g);
  const std::string path = Path("hashed.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path, /*recipe_hash=*/1).ok());

  // Header carries the hash; the open reports it without needing the
  // edge payload.
  StatusOr<GraphFileHeader> header = ReadGraphHeader(path);
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().content_hash, expected);
  uint64_t from_open = 0;
  StatusOr<Graph> opened = OpenGraphFile(path, &from_open);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(from_open, expected);
  EXPECT_TRUE(VerifyGraphFile(path).ok());

  // Verify must catch a header whose stored hash lies about the payload.
  {
    const uint64_t bogus = expected ^ 0xBADull;
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(offsetof(GraphFileHeader, content_hash));
    io.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  }
  EXPECT_FALSE(VerifyGraphFile(path).ok());
}

TEST_F(StoreTest, CacheReturnsContentHashOnMissHitAndLegacyFiles) {
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_hash"));
  ASSERT_TRUE(cache.ok());
  const auto build = [&]() -> StatusOr<Graph> {
    return WithWeightedCascade(BarabasiAlbert(250, 3, 31));
  };

  uint64_t miss_hash = 0;
  StatusOr<Graph> cold =
      cache.value()->GetOrBuildGraph("hash-recipe", build, &miss_hash);
  ASSERT_TRUE(cold.ok());
  EXPECT_EQ(miss_hash, GraphContentHash(cold.value()));

  uint64_t hit_hash = 0;
  StatusOr<Graph> warm =
      cache.value()->GetOrBuildGraph("hash-recipe", build, &hit_hash);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(hit_hash, miss_hash);

  // A pre-content-hash entry (header field zeroed, as an older build
  // would have written) must fall back to computing the hash on hit.
  const std::string entry = cache.value()->GraphPathFor("hash-recipe");
  {
    const uint64_t zero = 0;
    std::fstream io(entry, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(offsetof(GraphFileHeader, content_hash));
    io.write(reinterpret_cast<const char*>(&zero), sizeof(zero));
  }
  uint64_t legacy_hash = 0;
  StatusOr<Graph> legacy =
      cache.value()->GetOrBuildGraph("hash-recipe", build, &legacy_hash);
  ASSERT_TRUE(legacy.ok());
  EXPECT_EQ(cache.value()->stats().graph_hits, 2u);  // still a hit
  EXPECT_EQ(legacy_hash, miss_hash);
}

TEST_F(StoreTest, EdgeListSidecarMemoizesTheContentHash) {
  const std::string edges = Path("side.txt");
  {
    std::ofstream out(edges);
    out << "0 1 0.5\n1 2 0.25\n";
  }
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_side"));
  ASSERT_TRUE(cache.ok());
  const LoadOptions options;

  ASSERT_TRUE(ReadEdgeListCached(edges, options, cache.value().get()).ok());
  // The cold load wrote a (size, mtime) -> hash sidecar under the root.
  const fs::path side_dir = fs::path(cache.value()->root()) / "edge-hashes";
  ASSERT_TRUE(fs::exists(side_dir));
  fs::path sidecar;
  for (const auto& entry : fs::directory_iterator(side_dir)) {
    sidecar = entry.path();
  }
  ASSERT_FALSE(sidecar.empty());

  // A warm load with an intact sidecar skips the hashing read, hits, and
  // serves the graph's content hash straight from the .cwg header.
  uint64_t served_hash = 0;
  StatusOr<Graph> warm =
      ReadEdgeListCached(edges, options, cache.value().get(), &served_hash);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(cache.value()->stats().graph_hits, 1u);
  EXPECT_EQ(served_hash, GraphContentHash(warm.value()));

  // A forged sidecar (size/mtime identity intact, hash wrong) must
  // self-heal: the keyed parse disproves the memoized hash, the sidecar
  // is refreshed with the true value, and the retry serves the original
  // cache entry — a hit, never a stale graph and never a hard error.
  std::string first_line, source_line;
  {
    std::ifstream in(sidecar);
    std::getline(in, first_line);
    std::getline(in, source_line);
  }
  unsigned long long size = 0, hash = 0;
  long long mtime = 0;
  ASSERT_EQ(std::sscanf(first_line.c_str(), "v1 size=%llu mtime=%lld "
                        "hash=%llx", &size, &mtime, &hash), 3);
  {
    std::ofstream out(sidecar);
    char line[256];
    std::snprintf(line, sizeof(line), "v1 size=%llu mtime=%lld "
                  "hash=%016llx\n", size, mtime,
                  static_cast<unsigned long long>(hash ^ 0xD15EA5Eull));
    out << line << source_line << "\n";
  }
  ASSERT_TRUE(ReadEdgeListCached(edges, options, cache.value().get()).ok());
  EXPECT_EQ(cache.value()->stats().graph_hits, 2u);
  {
    std::ifstream in(sidecar);
    std::string healed;
    std::getline(in, healed);
    EXPECT_EQ(healed, first_line);  // true hash restored
  }

  // Dropping the sidecar forces a re-hash, recovers the same key (a
  // hit), and rewrites the sidecar.
  fs::remove(sidecar);
  ASSERT_TRUE(ReadEdgeListCached(edges, options, cache.value().get()).ok());
  EXPECT_EQ(cache.value()->stats().graph_hits, 3u);
  EXPECT_TRUE(fs::exists(sidecar));

  // A mismatched identity (size changed) ignores the sidecar: the edit
  // below is re-hashed and keyed afresh, never served stale.
  {
    std::ofstream out(edges);
    out << "0 1 0.5\n1 2 0.25\n2 0 1.0\n";
  }
  StatusOr<Graph> edited =
      ReadEdgeListCached(edges, options, cache.value().get());
  ASSERT_TRUE(edited.ok());
  EXPECT_EQ(edited.value().num_edges(), 3u);

  // Gc reclaims a sidecar once its dataset is gone (and only then):
  // with the file present the entry survives, deleted it is swept with
  // the other stale-file classes.
  fs::last_write_time(sidecar, fs::file_time_type::clock::now() -
                                   std::chrono::hours(2));
  (void)cache.value()->Gc(/*max_bytes=*/1 << 30);
  EXPECT_TRUE(fs::exists(sidecar));
  fs::remove(edges);
  const GcResult swept = cache.value()->Gc(/*max_bytes=*/1 << 30);
  EXPECT_FALSE(fs::exists(sidecar));
  EXPECT_GE(swept.files_removed, 1u);
}

TEST_F(StoreTest, RrEraDataAliasesTheMappingZeroCopy) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 13));
  const RrCollection rr = SampleCollection(g, 80, /*with_empty=*/true);
  const std::string path = Path("era.cwr");
  ASSERT_TRUE(WriteRrFile(rr, {}, path).ok());

  StatusOr<RrEraData> opened = OpenRrFile(path);
  ASSERT_TRUE(opened.ok());
  RrEraData data = std::move(opened).value();
  ASSERT_NE(data.mapping, nullptr);
  // The spans alias the mapping's bytes — no intermediate copies.
  const std::byte* begin = data.mapping->data();
  const std::byte* end = begin + data.mapping->size();
  const auto within = [&](const void* p) {
    return reinterpret_cast<const std::byte*>(p) >= begin &&
           reinterpret_cast<const std::byte*>(p) < end;
  };
  EXPECT_TRUE(within(data.offsets.data()));
  EXPECT_TRUE(within(data.weights.data()));
  if (!data.members.empty()) EXPECT_TRUE(within(data.members.data()));
  // And the views stay valid for the struct's lifetime (the mapping is
  // pinned): replay the members after moving the struct around.
  ASSERT_EQ(data.members.size(), rr.TotalMembers());
  for (std::size_t i = 0; i < data.members.size(); ++i) {
    ASSERT_EQ(data.members[i], rr.RawMembers()[i]);
  }
}

// The headline guarantee: an IMM run against a warm cache returns
// bit-identical seeds and estimates to a cold run and to an uncached run,
// at any thread count.
TEST_F(StoreTest, CachedImmMatchesUncachedBitForBit) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(600, 3, 23));
  const uint64_t graph_hash = GraphContentHash(g);

  ImmParams params;
  params.seed = 0xABCDE;
  params.num_threads = 1;
  const ImmResult uncached = Imm(g, 10, params);

  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_imm"));
  ASSERT_TRUE(cache.ok());
  params.cache = cache.value().get();
  params.graph_hash = graph_hash;
  const ImmResult cold = Imm(g, 10, params);
  EXPECT_GT(cache.value()->stats().rr_misses, 0u);

  params.num_threads = 4;  // warm run on a different thread count
  const ImmResult warm = Imm(g, 10, params);
  EXPECT_GT(cache.value()->stats().rr_hits, 0u);

  for (const ImmResult* other : {&cold, &warm}) {
    ASSERT_EQ(uncached.seeds, other->seeds);
    ASSERT_EQ(std::bit_cast<uint64_t>(uncached.coverage_estimate),
              std::bit_cast<uint64_t>(other->coverage_estimate));
    ASSERT_EQ(uncached.rr_count, other->rr_count);
  }
}

TEST_F(StoreTest, CachedPrimaPlusMatchesUncached) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(500, 3, 29));
  const std::vector<NodeId> prior = {3, 7, 11};

  ImmParams params;
  params.seed = 0x5151;
  const ImmResult uncached = PrimaPlus(g, prior, {5}, 5, params);

  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_prima"));
  ASSERT_TRUE(cache.ok());
  params.cache = cache.value().get();
  params.graph_hash = GraphContentHash(g);
  const ImmResult cold = PrimaPlus(g, prior, {5}, 5, params);
  const ImmResult warm = PrimaPlus(g, prior, {5}, 5, params);
  EXPECT_GT(cache.value()->stats().rr_hits, 0u);

  for (const ImmResult* other : {&cold, &warm}) {
    ASSERT_EQ(uncached.seeds, other->seeds);
    ASSERT_EQ(uncached.prefix_estimates, other->prefix_estimates);
  }

  // A different blocked set is a different source id: no false hits.
  const ImmResult different = PrimaPlus(g, {3, 7, 12}, {5}, 5, params);
  (void)different;
  EXPECT_GT(cache.value()->stats().rr_misses, 0u);
}

// End-to-end: a registry scenario swept against a warm cache emits
// byte-identical JSONL/CSV artifacts (timing excluded by default).
TEST_F(StoreTest, SweepColdVsWarmCacheArtifactsAreByteIdentical) {
  const ScenarioSpec spec =
      GlobalScenarioRegistry().Find("smoke-tiny").value();

  SweepOptions uncached_options;
  uncached_options.num_threads = 2;
  const StatusOr<SweepResult> uncached = RunSweep(spec, uncached_options);
  ASSERT_TRUE(uncached.ok());

  SweepOptions cache_options = uncached_options;
  cache_options.cache_dir = Path("cache_sweep");
  const StatusOr<SweepResult> cold = RunSweep(spec, cache_options);
  ASSERT_TRUE(cold.ok());
  EXPECT_TRUE(cold.value().cache_enabled);
  EXPECT_GT(cold.value().cache_stats.graph_misses, 0u);

  const StatusOr<SweepResult> warm = RunSweep(spec, cache_options);
  ASSERT_TRUE(warm.ok());
  EXPECT_GT(warm.value().cache_stats.graph_hits, 0u);
  EXPECT_GT(warm.value().cache_stats.rr_hits, 0u);

  std::ostringstream js_uncached, js_cold, js_warm, csv_cold, csv_warm;
  WriteJsonLines(uncached.value(), js_uncached);
  WriteJsonLines(cold.value(), js_cold);
  WriteJsonLines(warm.value(), js_warm);
  WriteCsv(cold.value(), csv_cold);
  WriteCsv(warm.value(), csv_warm);
  EXPECT_EQ(js_cold.str(), js_warm.str());
  EXPECT_EQ(csv_cold.str(), csv_warm.str());
  EXPECT_EQ(js_uncached.str(), js_cold.str());  // caching changes nothing
}

TEST_F(StoreTest, WriteFileAtomicReplacesAndNeverTears) {
  const std::string path = Path("atomic/nested/file.bin");
  const std::string first(1000, 'a');
  const ByteSection a{first.data(), first.size()};
  ASSERT_TRUE(WriteFileAtomic(path, {&a, 1}).ok());
  const std::string second(10, 'b');
  const ByteSection b{second.data(), second.size()};
  ASSERT_TRUE(WriteFileAtomic(path, {&b, 1}).ok());
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().size(), second.size());
  // No temp litter.
  std::size_t files = 0;
  for (const auto& entry :
       fs::directory_iterator(fs::path(path).parent_path())) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 1u);
}

// Torn-write robustness: a .cwg cut at every 1/8 of its length — plus a
// cut inside the header itself — must come back as a clean Status from
// Open and Verify, never a crash. These are the byte patterns a torn
// rename or a power cut mid-write leaves behind.
TEST_F(StoreTest, TruncatedGraphFileFailsCleanly) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 3, 13));
  const std::string path = Path("whole.cwg");
  ASSERT_TRUE(WriteGraphFile(g, path).ok());
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  const std::size_t size = mapped.value().size();

  std::vector<std::size_t> cuts = {sizeof(GraphFileHeader) / 2};
  for (std::size_t i = 1; i < 8; ++i) cuts.push_back(size * i / 8);
  for (const std::size_t keep : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " of " +
                 std::to_string(size) + " bytes");
    const std::string cut = Path("cut.cwg");
    std::ofstream(cut, std::ios::binary)
        .write(reinterpret_cast<const char*>(mapped.value().data()),
               static_cast<std::streamsize>(keep));
    EXPECT_FALSE(OpenGraphFile(cut).ok());
    EXPECT_FALSE(VerifyGraphFile(cut).ok());
  }
}

TEST_F(StoreTest, TruncatedRrFileFailsCleanly) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 19));
  const RrCollection rr = SampleCollection(g, 150, /*with_empty=*/true);
  const std::string path = Path("whole.cwr");
  ASSERT_TRUE(WriteRrFile(rr, {}, path).ok());
  StatusOr<MappedFile> mapped = MappedFile::Open(path);
  ASSERT_TRUE(mapped.ok());
  const std::size_t size = mapped.value().size();

  std::vector<std::size_t> cuts = {sizeof(RrFileHeader) / 2};
  for (std::size_t i = 1; i < 8; ++i) cuts.push_back(size * i / 8);
  for (const std::size_t keep : cuts) {
    SCOPED_TRACE("truncated to " + std::to_string(keep) + " of " +
                 std::to_string(size) + " bytes");
    const std::string cut = Path("cut.cwr");
    std::ofstream(cut, std::ios::binary)
        .write(reinterpret_cast<const char*>(mapped.value().data()),
               static_cast<std::streamsize>(keep));
    EXPECT_FALSE(OpenRrFile(cut).ok());
    EXPECT_FALSE(VerifyRrFile(cut).ok());
  }
}

// Self-healing: a corrupt cached graph is quarantined (entry + recipe
// sidecar moved into <cache>/quarantine/) and transparently rebuilt
// bit-identically; the rebuilt entry serves hits again afterwards.
TEST_F(StoreTest, CacheQuarantinesCorruptEntryAndRebuilds) {
  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_heal"));
  ASSERT_TRUE(cache.ok());

  int builds = 0;
  const auto build = [&]() -> StatusOr<Graph> {
    ++builds;
    return WithWeightedCascade(BarabasiAlbert(400, 3, 17));
  };
  StatusOr<Graph> cold = cache.value()->GetOrBuildGraph("heal-recipe", build);
  ASSERT_TRUE(cold.ok());
  ASSERT_EQ(builds, 1);

  const std::string path = cache.value()->GraphPathFor("heal-recipe");
  {
    std::fstream io(path, std::ios::in | std::ios::out | std::ios::binary);
    io.seekp(0);
    io.put('X');  // smash the magic: the next open must fail
  }

  StatusOr<Graph> healed =
      cache.value()->GetOrBuildGraph("heal-recipe", build);
  ASSERT_TRUE(healed.ok());
  EXPECT_EQ(builds, 2);
  ExpectGraphsBitIdentical(cold.value(), healed.value());
  EXPECT_EQ(cache.value()->stats().quarantined, 1u);

  // The broken bytes (and their sidecar) moved aside, not vanished.
  std::size_t cwg = 0, recipe = 0;
  for (const auto& entry :
       fs::directory_iterator(cache.value()->QuarantineDir())) {
    cwg += entry.path().extension() == ".cwg";
    recipe += entry.path().extension() == ".recipe";
  }
  EXPECT_EQ(cwg, 1u);
  EXPECT_EQ(recipe, 1u);

  // The rebuild rewrote a valid entry: the third call is a plain hit.
  StatusOr<Graph> warm = cache.value()->GetOrBuildGraph("heal-recipe", build);
  ASSERT_TRUE(warm.ok());
  EXPECT_EQ(builds, 2);
  EXPECT_EQ(cache.value()->stats().graph_hits, 1u);
}

// Degraded-mode write contract: the first failed store flips the cache
// read-only for the process and every later allocation continues
// uncached — a full or read-only cache disk must never fail a build.
TEST_F(StoreTest, CacheWriteFailureFlipsReadOnlyAndContinues) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(failpoints.Set("cache.graph.store", "1*error").ok());

  StatusOr<std::unique_ptr<ArtifactCache>> cache =
      ArtifactCache::Open(Path("cache_ro"));
  ASSERT_TRUE(cache.ok());
  ASSERT_TRUE(cache.value()->writes_enabled());

  int builds = 0;
  const auto build = [&]() -> StatusOr<Graph> {
    ++builds;
    return WithConstantProb(BarabasiAlbert(150, 2, 31), 0.1);
  };
  StatusOr<Graph> first = cache.value()->GetOrBuildGraph("ro-a", build);
  ASSERT_TRUE(first.ok());  // the failed store must not fail the build
  EXPECT_EQ(builds, 1);
  EXPECT_FALSE(cache.value()->writes_enabled());
  EXPECT_TRUE(cache.value()->stats().writes_disabled);

  // The failpoint is exhausted, but writes stay off: later stores are
  // skipped entirely and the cache keeps serving builds uncached.
  StatusOr<Graph> second = cache.value()->GetOrBuildGraph("ro-b", build);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(builds, 2);
  EXPECT_TRUE(cache.value()->List().empty());
  failpoints.Clear("cache.graph.store");
}

TEST(StoreFormatTest, HashHelpers) {
  EXPECT_EQ(HashToHex(0), "0000000000000000");
  EXPECT_EQ(HashToHex(0xDEADBEEFull), "00000000deadbeef");
  EXPECT_NE(Fnv1a64("a"), Fnv1a64("b"));
  EXPECT_EQ(Fnv1a64("recipe"), Fnv1a64("recipe"));
  // Graph hash is sensitive to probability bits, not just topology.
  const Graph g1 = WithConstantProb(BarabasiAlbert(50, 2, 1), 0.1);
  const Graph g2 = WithConstantProb(BarabasiAlbert(50, 2, 1), 0.2);
  EXPECT_NE(GraphContentHash(g1), GraphContentHash(g2));
}

}  // namespace
}  // namespace cwm
