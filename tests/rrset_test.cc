// Tests for the RR-set substrate: collection bookkeeping, greedy coverage,
// the three samplers, IMM bounds and end-to-end seed quality, PRIMA+
// marginality and prefix preservation.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/allocation.h"
#include "rrset/imm.h"
#include "rrset/node_selection.h"
#include "rrset/prima_plus.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "simulate/estimator.h"

namespace cwm {
namespace {

UtilityConfig SingleItemUnit() {
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0).SetItemPrice(0, 0.0);
  return std::move(b).Build().value();
}

TEST(RrCollectionTest, AddAndIndex) {
  RrCollection rr(5);
  const std::vector<NodeId> m1{1, 2};
  const std::vector<NodeId> m2{2, 3};
  EXPECT_EQ(rr.Add(m1, 1.0), 0u);
  EXPECT_EQ(rr.Add(m2, 0.5), 1u);
  EXPECT_EQ(rr.size(), 2u);
  EXPECT_EQ(rr.TotalMembers(), 4u);
  EXPECT_DOUBLE_EQ(rr.TotalWeight(), 1.5);
  EXPECT_EQ(rr.RrSetsOf(2).size(), 2u);
  EXPECT_EQ(rr.RrSetsOf(0).size(), 0u);
  EXPECT_DOUBLE_EQ(rr.Weight(1), 0.5);
  EXPECT_EQ(rr.Members(1).size(), 2u);
}

TEST(RrCollectionTest, EmptySetsCountTowardSize) {
  RrCollection rr(3);
  rr.Add(std::vector<NodeId>{}, 1.0);
  rr.Add(std::vector<NodeId>{1}, 1.0);
  EXPECT_EQ(rr.size(), 2u);
  EXPECT_EQ(rr.Members(0).size(), 0u);
}

TEST(RrCollectionTest, ClearKeepsUniverse) {
  RrCollection rr(3);
  rr.Add(std::vector<NodeId>{1, 2}, 1.0);
  rr.Clear();
  EXPECT_EQ(rr.size(), 0u);
  EXPECT_EQ(rr.num_nodes(), 3u);
  EXPECT_EQ(rr.RrSetsOf(1).size(), 0u);
  EXPECT_DOUBLE_EQ(rr.TotalWeight(), 0.0);
}

TEST(NodeSelectionTest, PicksGreedyOptimal) {
  // Node 0 covers sets {0,1}, node 1 covers {2}, node 2 covers {1,2}.
  RrCollection rr(3);
  rr.Add(std::vector<NodeId>{0}, 1.0);
  rr.Add(std::vector<NodeId>{0, 2}, 1.0);
  rr.Add(std::vector<NodeId>{1, 2}, 1.0);
  const GreedySelection sel = SelectMaxCoverage(rr, 1);
  ASSERT_EQ(sel.seeds.size(), 1u);
  // Nodes 0 and 2 both cover weight 2; tie breaks to node 0.
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(sel.covered_prefix[0], 2.0);
}

TEST(NodeSelectionTest, WeightsChangeTheWinner) {
  RrCollection rr(3);
  rr.Add(std::vector<NodeId>{0}, 0.1);
  rr.Add(std::vector<NodeId>{0}, 0.1);
  rr.Add(std::vector<NodeId>{1}, 0.9);
  const GreedySelection sel = SelectMaxCoverage(rr, 1);
  EXPECT_EQ(sel.seeds[0], 1u);
  EXPECT_DOUBLE_EQ(sel.covered_prefix[0], 0.9);
}

TEST(NodeSelectionTest, MarginalGainsNotDoubleCounted) {
  RrCollection rr(2);
  rr.Add(std::vector<NodeId>{0, 1}, 1.0);
  rr.Add(std::vector<NodeId>{0}, 1.0);
  const GreedySelection sel = SelectMaxCoverage(rr, 2);
  ASSERT_EQ(sel.seeds.size(), 2u);
  EXPECT_EQ(sel.seeds[0], 0u);
  EXPECT_DOUBLE_EQ(sel.covered_prefix[0], 2.0);
  // Node 1's only set is already covered: no extra weight.
  EXPECT_DOUBLE_EQ(sel.covered_prefix[1], 2.0);
}

TEST(NodeSelectionTest, FillsBudgetWithZeroGainNodes) {
  RrCollection rr(5);
  rr.Add(std::vector<NodeId>{4}, 1.0);
  const GreedySelection sel = SelectMaxCoverage(rr, 3);
  ASSERT_EQ(sel.seeds.size(), 3u);
  EXPECT_EQ(sel.seeds[0], 4u);
  EXPECT_DOUBLE_EQ(sel.CoveredAt(3), 1.0);
}

TEST(NodeSelectionTest, MatchesBruteForceOnRandomInstances) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    RrCollection rr(6);
    const int sets = 12;
    for (int s = 0; s < sets; ++s) {
      std::vector<NodeId> members;
      for (NodeId v = 0; v < 6; ++v) {
        if (rng.NextBernoulli(0.3)) members.push_back(v);
      }
      rr.Add(members, 0.25 + 0.75 * rng.NextDouble());
    }
    const GreedySelection sel = SelectMaxCoverage(rr, 1);
    // Budget 1: greedy == optimal; check against brute force.
    double best = -1.0;
    for (NodeId v = 0; v < 6; ++v) {
      double w = 0;
      for (uint32_t id : rr.RrSetsOf(v)) w += rr.Weight(id);
      best = std::max(best, w);
    }
    EXPECT_NEAR(sel.CoveredAt(1), best, 1e-9);
  }
}

TEST(RrSamplerTest, StandardRrSetOnDeterministicGraphIsReverseReachable) {
  // 0 -> 1 -> 2, prob 1: RR(2) = {2,1,0}, RR(0) = {0}.
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  const Graph g = std::move(b).Build();
  RrSampler sampler(g);
  Rng rng(3);
  int seen_sizes[4] = {0, 0, 0, 0};
  std::vector<NodeId> out;
  for (int i = 0; i < 300; ++i) {
    sampler.SampleStandard(rng, &out);
    ASSERT_GE(out.size(), 1u);
    ASSERT_LE(out.size(), 3u);
    seen_sizes[out.size()]++;
    // Root is the first entry; members must be ancestors of the root.
    if (out[0] == 0) EXPECT_EQ(out.size(), 1u);
    if (out[0] == 2) EXPECT_EQ(out.size(), 3u);
  }
  EXPECT_GT(seen_sizes[1], 0);
  EXPECT_GT(seen_sizes[3], 0);
}

TEST(RrSamplerTest, MarginalZeroedWhenHittingBlocked) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  const Graph g = std::move(b).Build();
  RrSampler sampler(g);
  Rng rng(5);
  std::vector<char> blocked{1, 0, 0};  // node 0 is an S_P seed
  std::vector<NodeId> out;
  for (int i = 0; i < 300; ++i) {
    sampler.SampleMarginal(rng, blocked, &out);
    // Any RR set rooted at 0, or reaching back to 0, must be empty.
    for (NodeId v : out) EXPECT_NE(v, 0u);
    if (!out.empty() && out[0] == 2) {
      // Root 2 reaches back through 1 to 0 deterministically -> zeroed.
      ADD_FAILURE() << "RR set rooted at 2 should have been zeroed";
    }
  }
}

TEST(RrSamplerTest, WeightedStopsAtFixedSeedsWithCorrectWeight) {
  // 0 -> 1 -> 2 -> 3 (prob 1). S_P = {0: item j with E[U+] = 0.4}.
  GraphBuilder b(4);
  b.AddEdge(0, 1, 1.0);
  b.AddEdge(1, 2, 1.0);
  b.AddEdge(2, 3, 1.0);
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 1.0).SetItemValue(1, 0.4);  // i superior-ish, j
  const UtilityConfig c = std::move(cb).Build().value();
  Allocation sp(2);
  sp.Add(0, 1);
  const auto fixed = FixedAllocationIndex::Build(4, c, sp);
  EXPECT_EQ(fixed.is_seed[0], 1);
  EXPECT_DOUBLE_EQ(fixed.best_value[0], 0.4);

  RrSampler sampler(g);
  Rng rng(7);
  std::vector<NodeId> out;
  const double wmax = 1.0;  // E[U+(i)]
  for (int it = 0; it < 200; ++it) {
    const double w = sampler.SampleWeighted(rng, fixed, wmax, &out);
    ASSERT_FALSE(out.empty());
    if (out[0] == 0) {
      // Root is the fixed seed itself: weight wmax - 0.4.
      EXPECT_DOUBLE_EQ(w, 0.6);
      EXPECT_EQ(out.size(), 1u);
    } else {
      // Every root reaches back to node 0 deterministically: BFS stops at
      // the level containing node 0, weight 0.6.
      EXPECT_DOUBLE_EQ(w, 0.6);
      EXPECT_EQ(out.back(), 0u);
    }
  }
}

TEST(RrSamplerTest, WeightedFullWeightWhenUnreachable) {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 1.0);  // node 2 isolated
  const Graph g = std::move(b).Build();
  UtilityConfigBuilder cb(2);
  cb.SetItemValue(0, 2.0).SetItemValue(1, 1.0);
  const UtilityConfig c = std::move(cb).Build().value();
  Allocation sp(2);
  sp.Add(0, 1);
  const auto fixed = FixedAllocationIndex::Build(3, c, sp);
  RrSampler sampler(g);
  Rng rng(11);
  std::vector<NodeId> out;
  for (int it = 0; it < 100; ++it) {
    const double w = sampler.SampleWeighted(rng, fixed, 2.0, &out);
    if (!out.empty() && out[0] == 2) {
      EXPECT_DOUBLE_EQ(w, 2.0);  // S_P never reached: full marginal
      EXPECT_EQ(out.size(), 1u);
    }
  }
}

TEST(ImmBoundsTest, LambdasPositiveAndMonotoneInBudget) {
  const double eps = 0.5, ell = 1.0;
  const double l1 = LambdaStar(10000, 10, eps, ell);
  const double l2 = LambdaStar(10000, 50, eps, ell);
  EXPECT_GT(l1, 0.0);
  EXPECT_GT(l2, l1);  // log C(n,b) grows with b (b << n)
  const double p1 = LambdaPrime(10000, 10, eps, ell);
  const double p2 = LambdaPrime(10000, 50, eps, ell);
  EXPECT_GT(p1, 0.0);
  EXPECT_GT(p2, p1);
}

TEST(ImmTest, PicksHubOnStarGraph) {
  // Star: center 0 -> 100 leaves, prob 1. Best single seed is the center.
  const std::size_t n = 101;
  GraphBuilder b(n);
  for (NodeId leaf = 1; leaf < n; ++leaf) b.AddEdge(0, leaf, 1.0);
  const Graph g = std::move(b).Build();
  const ImmResult result = Imm(g, 1, {.epsilon = 0.5, .ell = 1.0, .seed = 3});
  ASSERT_EQ(result.seeds.size(), 1u);
  EXPECT_EQ(result.seeds[0], 0u);
  EXPECT_NEAR(result.coverage_estimate, 101.0, 8.0);
}

TEST(ImmTest, SpreadEstimateMatchesForwardMonteCarlo) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(400, 2, 21));
  const ImmResult result =
      Imm(g, 5, {.epsilon = 0.3, .ell = 1.0, .seed = 7});
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 4000, .seed = 9});
  const double forward = est.Spread(result.seeds);
  // IMM guarantees a multiplicative (1 +- eps') estimate; allow slack.
  EXPECT_NEAR(result.coverage_estimate, forward,
              0.25 * forward + 3.0);
}

TEST(ImmTest, MoreBudgetNeverHurtsSpread) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(500, 2, 23));
  const ImmParams params{.epsilon = 0.4, .ell = 1.0, .seed = 11};
  const ImmResult r1 = Imm(g, 2, params);
  const ImmResult r2 = Imm(g, 10, params);
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 2000, .seed = 13});
  EXPECT_GE(est.Spread(r2.seeds) + 1.0, est.Spread(r1.seeds));
}

TEST(PrimaPlusTest, NeverSelectsBlockedSeeds) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 31));
  const std::vector<NodeId> prior{0, 1, 2, 3, 4};
  const ImmResult result =
      PrimaPlus(g, prior, {3, 5}, 8, {.epsilon = 0.5, .ell = 1.0, .seed = 3});
  ASSERT_EQ(result.seeds.size(), 8u);
  for (NodeId s : result.seeds) {
    // Blocked nodes appear in no RR set, so they can only be selected as
    // zero-gain filler; with 300 candidate nodes that never happens.
    EXPECT_EQ(std::count(prior.begin(), prior.end(), s), 0);
  }
}

TEST(PrimaPlusTest, PrefixEstimatesAreMonotone) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(300, 2, 37));
  const ImmResult result = PrimaPlus(
      g, {}, {2, 4, 6}, 12, {.epsilon = 0.5, .ell = 1.0, .seed = 5});
  ASSERT_EQ(result.prefix_estimates.size(), 4u);  // 2, 4, 6, 12
  for (std::size_t i = 1; i < result.prefix_estimates.size(); ++i) {
    EXPECT_GE(result.prefix_estimates[i] + 1e-9,
              result.prefix_estimates[i - 1]);
  }
}

TEST(PrimaPlusTest, MarginalSpreadEstimateIsMarginal) {
  // With prior seeds saturating a component, marginal spread of extra
  // seeds should be far below their unconditional spread.
  GraphBuilder b(200);
  // Two chains: 0->1->...->99 and 100->...->199, prob 1.
  for (NodeId v = 0; v < 99; ++v) b.AddEdge(v, v + 1, 1.0);
  for (NodeId v = 100; v < 199; ++v) b.AddEdge(v, v + 1, 1.0);
  const Graph g = std::move(b).Build();
  // Prior seed at 0 claims the whole first chain.
  const ImmResult result =
      PrimaPlus(g, {0}, {1}, 1, {.epsilon = 0.4, .ell = 1.0, .seed = 7});
  ASSERT_EQ(result.seeds.size(), 1u);
  // The best marginal seed must be the head of the *second* chain.
  EXPECT_EQ(result.seeds[0], 100u);
  EXPECT_NEAR(result.coverage_estimate, 100.0, 15.0);
}

TEST(PrimaPlusTest, SeedsOrderedByGreedyGain) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(400, 3, 41));
  const ImmResult result =
      PrimaPlus(g, {}, {4}, 4, {.epsilon = 0.5, .ell = 1.0, .seed = 9});
  const UtilityConfig c = SingleItemUnit();
  WelfareEstimator est(g, c, {.num_worlds = 2000, .seed = 11});
  // The first seed alone should achieve a large fraction of the pair's
  // spread — a loose check that the order is by decreasing gain.
  const double s1 = est.Spread({result.seeds[0]});
  const double s_last = est.Spread({result.seeds[3]});
  EXPECT_GE(s1 + 5.0, s_last);
}

}  // namespace
}  // namespace cwm
