// Property-based tests (parameterized sweeps) of the paper's lemmas and
// model invariants:
//  * Lemma 1/2: umin * sigma(S) <= rho(S) <= umax * sigma(S).
//  * Lemma 3: welfare subadditivity across items.
//  * Lemmas 4/5: under SupGRD's conditions welfare is monotone and
//    submodular in the superior item's seed set.
//  * Progressive adoption: a node's adoption set only grows, and always
//    has non-negative world utility.
//  * RR-set estimator unbiasedness against forward Monte Carlo.
#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "exp/configs.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph_builder.h"
#include "model/allocation.h"
#include "rrset/rr_collection.h"
#include "rrset/rr_sampler.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"

namespace cwm {
namespace {

Graph RandomGraph(int kind, uint64_t seed) {
  switch (kind) {
    case 0:
      return WithWeightedCascade(BarabasiAlbert(150, 2, seed));
    case 1:
      return WithConstantProb(ErdosRenyi(150, 600, seed), 0.15);
    default:
      return WithWeightedCascade(
          DirectedPreferentialAttachment(150, 4, 0.2, seed));
  }
}

UtilityConfig ConfigOf(int kind) {
  switch (kind) {
    case 0:
      return MakeConfigC1();
    case 1:
      return MakeConfigC3();
    case 2:
      return MakeThreeItemConfig();
    default:
      return MakeLastFmConfig();
  }
}

Allocation RandomAllocation(const UtilityConfig& config, std::size_t n,
                            int pairs, uint64_t seed) {
  Rng rng(seed);
  Allocation alloc(config.num_items());
  for (int p = 0; p < pairs; ++p) {
    alloc.Add(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<ItemId>(rng.NextBounded(config.num_items())));
  }
  return alloc;
}

// ---------------------------------------------------------------------
// Lemma 2 sandwich: umin * sigma(S) <= rho(S) <= umax * sigma(S).
class LemmaSandwichTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(LemmaSandwichTest, WelfareBoundedByScaledSpread) {
  const auto [graph_kind, config_kind, pairs] = GetParam();
  const Graph g = RandomGraph(graph_kind, 100 + graph_kind);
  const UtilityConfig c = ConfigOf(config_kind);
  const Allocation alloc = RandomAllocation(
      c, g.num_nodes(), pairs, 17 * graph_kind + config_kind + pairs);
  WelfareEstimator est(g, c, {.num_worlds = 1500, .seed = 77});
  const double rho = est.Welfare(alloc);
  const double sigma = est.Spread(alloc.SeedNodes());
  const double umin = c.UMin();
  const double umax = c.UMax(5, 20000);
  // Allow small Monte-Carlo slack on both sides.
  EXPECT_LE(umin * sigma, rho + 0.05 * (1.0 + umin * sigma))
      << "graph=" << graph_kind << " config=" << config_kind;
  EXPECT_GE(umax * sigma + 0.05 * (1.0 + umax * sigma), rho);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LemmaSandwichTest,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(0, 1, 2, 3),
                       ::testing::Values(2, 6, 12)));

// ---------------------------------------------------------------------
// Lemma 3: rho(union_i S_i x {i}) <= sum_i rho(S_i x {i}).
class SubadditivityTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(SubadditivityTest, WelfareSubadditiveAcrossItems) {
  const auto [graph_kind, config_kind] = GetParam();
  const Graph g = RandomGraph(graph_kind, 200 + graph_kind);
  const UtilityConfig c = ConfigOf(config_kind);
  Rng rng(31 * graph_kind + config_kind);
  WelfareEstimator est(g, c, {.num_worlds = 1200, .seed = 99});

  Allocation merged(c.num_items());
  double sum_individual = 0.0;
  for (ItemId i = 0; i < c.num_items(); ++i) {
    Allocation single(c.num_items());
    for (int s = 0; s < 3; ++s) {
      const NodeId v = static_cast<NodeId>(rng.NextBounded(g.num_nodes()));
      single.Add(v, i);
      merged.Add(v, i);
    }
    sum_individual += est.Welfare(single);
  }
  const double merged_welfare = est.Welfare(merged);
  EXPECT_LE(merged_welfare,
            sum_individual + 0.05 * (1.0 + sum_individual));
}

INSTANTIATE_TEST_SUITE_P(Sweep, SubadditivityTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 2, 3)));

// ---------------------------------------------------------------------
// Lemmas 4/5 under SupGRD's conditions, via exact evaluation (p = 1
// chains, zero-mean clamped noise replaced by a single world since the
// inequalities hold world-by-world in the proofs).
class SupGrdLemmasTest : public ::testing::TestWithParam<int> {};

TEST_P(SupGrdLemmasTest, WelfareMonotoneAndSubmodularInSuperiorSeeds) {
  const int seed = GetParam();
  // Random DAG-ish deterministic graph.
  Rng rng(seed);
  GraphBuilder b(30);
  for (int e = 0; e < 45; ++e) {
    NodeId u = static_cast<NodeId>(rng.NextBounded(30));
    NodeId v = static_cast<NodeId>(rng.NextBounded(30));
    if (u != v) b.AddEdge(u, v, 1.0);
  }
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC6();  // superior item 0
  Allocation sp(2);
  sp.Add(static_cast<NodeId>(rng.NextBounded(30)), 1);
  sp.Add(static_cast<NodeId>(rng.NextBounded(30)), 1);

  // Fix one world (noise at zero; edges deterministic): the lemmas hold in
  // every world, so they hold here exactly.
  UicSimulator sim(g, c);
  const WorldUtilityTable table(c, {0.0, 0.0});
  const EdgeWorld world{1};
  auto welfare = [&](const std::vector<NodeId>& seeds) {
    Allocation alloc = sp;
    for (NodeId v : seeds) alloc.Add(v, 0);
    return sim.RunWorld(alloc, world, table).welfare;
  };

  // Monotone: adding a seed never reduces welfare.
  const NodeId s1 = static_cast<NodeId>(rng.NextBounded(30));
  const NodeId s2 = static_cast<NodeId>(rng.NextBounded(30));
  const NodeId x = static_cast<NodeId>(rng.NextBounded(30));
  EXPECT_LE(welfare({}), welfare({s1}) + 1e-9);
  EXPECT_LE(welfare({s1}), welfare({s1, s2}) + 1e-9);
  // Submodular: marginal of x shrinks as the base grows.
  const double m_small = welfare({s1, x}) - welfare({s1});
  const double m_large = welfare({s1, s2, x}) - welfare({s1, s2});
  EXPECT_LE(m_large, m_small + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SupGrdLemmasTest,
                         ::testing::Range(1, 21));

// ---------------------------------------------------------------------
// Progressive adoption and non-negative adopted utility, checked by
// instrumenting full diffusions across random worlds.
class AdoptionInvariantTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(AdoptionInvariantTest, WelfarePerWorldConsistent) {
  const auto [graph_kind, config_kind] = GetParam();
  const Graph g = RandomGraph(graph_kind, 300 + graph_kind);
  const UtilityConfig c = ConfigOf(config_kind);
  const Allocation alloc =
      RandomAllocation(c, g.num_nodes(), 8, 71 + graph_kind);
  UicSimulator sim(g, c);
  Rng rng(5);
  for (int w = 0; w < 30; ++w) {
    const WorldUtilityTable table(c, rng);
    const WorldOutcome out =
        sim.RunWorld(alloc, EdgeWorld{static_cast<uint64_t>(1000 + w)}, table);
    // Welfare is a sum of non-negative per-node utilities (every adopted
    // bundle passed the U >= 0 test in its own world).
    EXPECT_GE(out.welfare, -1e-9);
    uint64_t total_adopters = 0;
    for (uint64_t a : out.adopters_per_item) total_adopters += a;
    EXPECT_GE(total_adopters, out.adopting_nodes);  // bundles count twice
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdoptionInvariantTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(0, 1, 2, 3)));

// ---------------------------------------------------------------------
// RR estimator unbiasedness: n * E[I(S covers R)] ~= sigma(S), across
// graph families and seed-set sizes.
class RrUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(RrUnbiasednessTest, CoverageMatchesForwardSpread) {
  const auto [graph_kind, num_seeds] = GetParam();
  const Graph g = RandomGraph(graph_kind, 400 + graph_kind);
  Rng rng(43 + graph_kind);
  std::vector<NodeId> seeds;
  for (int s = 0; s < num_seeds; ++s) {
    seeds.push_back(static_cast<NodeId>(rng.NextBounded(g.num_nodes())));
  }

  RrSampler sampler(g);
  std::vector<NodeId> members;
  const int kSamples = 30000;
  int covered = 0;
  for (int it = 0; it < kSamples; ++it) {
    sampler.SampleStandard(rng, &members);
    for (NodeId v : members) {
      bool hit = false;
      for (NodeId s : seeds) hit |= (s == v);
      if (hit) {
        ++covered;
        break;
      }
    }
  }
  const double rr_estimate =
      static_cast<double>(g.num_nodes()) * covered / kSamples;

  UtilityConfigBuilder cb(1);
  cb.SetItemValue(0, 1.0);
  const UtilityConfig unit = std::move(cb).Build().value();
  WelfareEstimator est(g, unit, {.num_worlds = 6000, .seed = 17});
  const double forward = est.Spread(seeds);
  EXPECT_NEAR(rr_estimate, forward, 0.08 * forward + 1.5)
      << "graph=" << graph_kind << " seeds=" << num_seeds;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RrUnbiasednessTest,
                         ::testing::Combine(::testing::Values(0, 1, 2),
                                            ::testing::Values(1, 3, 8)));

// ---------------------------------------------------------------------
// Marginal RR sets estimate marginal spread: n * E[I(S covers R_marg)]
// ~= sigma(S | S_P).
class MarginalRrTest : public ::testing::TestWithParam<int> {};

TEST_P(MarginalRrTest, MarginalCoverageMatchesForwardMarginalSpread) {
  const int graph_kind = GetParam();
  const Graph g = RandomGraph(graph_kind, 500 + graph_kind);
  Rng rng(91 + graph_kind);
  std::vector<NodeId> prior, extra;
  for (int s = 0; s < 4; ++s) {
    prior.push_back(static_cast<NodeId>(rng.NextBounded(g.num_nodes())));
    extra.push_back(static_cast<NodeId>(rng.NextBounded(g.num_nodes())));
  }
  std::vector<char> blocked(g.num_nodes(), 0);
  for (NodeId v : prior) blocked[v] = 1;

  RrSampler sampler(g);
  std::vector<NodeId> members;
  const int kSamples = 30000;
  int covered = 0;
  for (int it = 0; it < kSamples; ++it) {
    sampler.SampleMarginal(rng, blocked, &members);
    for (NodeId v : members) {
      bool hit = false;
      for (NodeId s : extra) hit |= (s == v);
      if (hit) {
        ++covered;
        break;
      }
    }
  }
  const double rr_estimate =
      static_cast<double>(g.num_nodes()) * covered / kSamples;

  UtilityConfigBuilder cb(1);
  cb.SetItemValue(0, 1.0);
  const UtilityConfig unit = std::move(cb).Build().value();
  WelfareEstimator est(g, unit, {.num_worlds = 6000, .seed = 19});
  const double forward = est.MarginalSpread(prior, extra);
  EXPECT_NEAR(rr_estimate, forward, 0.1 * forward + 1.5);
}

INSTANTIATE_TEST_SUITE_P(Sweep, MarginalRrTest, ::testing::Values(0, 1, 2));

}  // namespace
}  // namespace cwm
