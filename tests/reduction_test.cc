// Tests for the Theorem 2 SET-COVER reduction gadget: structural checks
// plus an empirical replay of Claims 1-3 — the welfare gap between YES and
// NO instances that makes CWelMax inapproximable.
#include <gtest/gtest.h>

#include "exp/reduction.h"
#include "model/allocation.h"
#include "simulate/estimator.h"
#include "simulate/uic_simulator.h"

namespace cwm {
namespace {

// YES instance: 3 elements; S0 = {0,1}, S1 = {2}, S2 = {0,2}; k = 2
// (S0 + S1 covers everything).
SetCoverInstance YesInstance() {
  SetCoverInstance inst;
  inst.num_elements = 3;
  inst.sets = {{0, 1}, {2}, {0, 2}};
  inst.k = 2;
  return inst;
}

// NO instance: 4 elements; S0 = {0,1}, S1 = {2}, S2 = {3}; k = 2 covers at
// most 3 of the 4 elements.
SetCoverInstance NoInstance() {
  SetCoverInstance inst;
  inst.num_elements = 4;
  inst.sets = {{0, 1}, {2}, {3}};
  inst.k = 2;
  return inst;
}

double ExactWelfare(const Theorem2Gadget& gadget, const Allocation& i1) {
  // All edges have probability 1 and the configuration is noiseless, so a
  // single world is exact.
  WelfareEstimator est(gadget.graph, gadget.utility,
                       {.num_worlds = 1, .seed = 1});
  return est.Welfare(Allocation::Union(i1, gadget.fixed_sp));
}

TEST(GadgetStructureTest, NodeAndSeedCounts) {
  const SetCoverInstance inst = YesInstance();
  const std::size_t N = 3;  // multiple of n = 3
  const Theorem2Gadget g = BuildTheorem2Gadget(inst, N);
  const std::size_t n = 3, r = 3;
  EXPECT_EQ(g.graph.num_nodes(), r + 3 * n + N * (6 * n + N));
  EXPECT_EQ(g.s_nodes.size(), r);
  EXPECT_EQ(g.g_nodes.size(), N * n);
  EXPECT_EQ(g.d_nodes.size(), N * N);
  EXPECT_EQ(g.num_d_nodes, N * N);
  // Fixed allocation: n seeds each for i2, i3, i4; none for i1.
  EXPECT_TRUE(g.fixed_sp.SeedsOf(0).empty());
  EXPECT_EQ(g.fixed_sp.SeedsOf(1).size(), n);
  EXPECT_EQ(g.fixed_sp.SeedsOf(2).size(), n);
  EXPECT_EQ(g.fixed_sp.SeedsOf(3).size(), n);
  EXPECT_EQ(g.budgets, (BudgetVector{2, 3, 3, 3}));
}

TEST(GadgetStructureTest, RejectsBadCopyCount) {
  EXPECT_DEATH(BuildTheorem2Gadget(YesInstance(), 4), "num_copies");
}

TEST(GadgetBehaviourTest, YesInstanceCoverSeedsReachClaimOneBound) {
  const SetCoverInstance inst = YesInstance();
  // The proof needs N > 8n/c = 60 for the N^2 terms to dominate the
  // 3nN * U(i4) side payments.
  const std::size_t N = 60;
  const Theorem2Gadget g = BuildTheorem2Gadget(inst, N);
  // Seed i1 on the covering sets S0 and S1.
  Allocation i1(4);
  i1.Add(g.s_nodes[0], 0);
  i1.Add(g.s_nodes[1], 0);
  const double welfare = ExactWelfare(g, i1);
  const double u_i1i4 = g.utility.DetUtility(0x9);
  // Claim 2: optimal YES welfare exceeds N^2 * U({i1,i4}).
  EXPECT_GT(welfare, static_cast<double>(N * N) * u_i1i4);
}

TEST(GadgetBehaviourTest, YesInstanceAllDNodesAdoptI1AndI4) {
  const SetCoverInstance inst = YesInstance();
  const std::size_t N = 3;
  const Theorem2Gadget g = BuildTheorem2Gadget(inst, N);
  Allocation i1(4);
  i1.Add(g.s_nodes[0], 0);
  i1.Add(g.s_nodes[1], 0);
  WelfareEstimator est(g.graph, g.utility, {.num_worlds = 1, .seed = 1});
  const WelfareStats stats =
      est.Stats(Allocation::Union(i1, g.fixed_sp));
  // Every d node adopts i1 and i4.
  EXPECT_GE(stats.adopters_per_item[0], static_cast<double>(N * N));
  EXPECT_GE(stats.adopters_per_item[3], static_cast<double>(N * N));
}

TEST(GadgetBehaviourTest, NonCoverSeedsLoseToBundleBlocking) {
  const SetCoverInstance inst = YesInstance();
  const std::size_t N = 60;  // N > 8n/c
  const Theorem2Gadget g = BuildTheorem2Gadget(inst, N);
  // Seeding a non-cover (S1, S2 leaves element 1 uncovered): the {i2,i3}
  // bundle sweeps the f and d nodes, blocking i4.
  Allocation bad(4);
  bad.Add(g.s_nodes[1], 0);
  bad.Add(g.s_nodes[2], 0);
  Allocation good(4);
  good.Add(g.s_nodes[0], 0);
  good.Add(g.s_nodes[1], 0);
  EXPECT_LT(ExactWelfare(g, bad), 0.4 * ExactWelfare(g, good));
}

TEST(GadgetBehaviourTest, NoInstanceWelfareBelowGapThreshold) {
  const SetCoverInstance inst = NoInstance();
  const std::size_t N = 80;  // multiple of n = 4, and N > 8n/c = 80 - 1
  const Theorem2Gadget g = BuildTheorem2Gadget(inst, N);
  const double u_i1i4 = g.utility.DetUtility(0x9);
  const double threshold =
      0.4 * static_cast<double>(N * N) * u_i1i4;  // c * N^2 * U({i1,i4})

  // Best s-node seeding (any k = 2 sets; all choices leave an uncovered
  // element).
  double best_s = 0;
  for (std::size_t a = 0; a < g.s_nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < g.s_nodes.size(); ++b) {
      Allocation alloc(4);
      alloc.Add(g.s_nodes[a], 0);
      alloc.Add(g.s_nodes[b], 0);
      best_s = std::max(best_s, ExactWelfare(g, alloc));
    }
  }
  EXPECT_LT(best_s, threshold);

  // Direct g-node seeding (the proof's best NO-instance strategy) is also
  // below the threshold.
  Allocation gseed(4);
  gseed.Add(g.g_nodes[0], 0);
  gseed.Add(g.g_nodes[1], 0);
  EXPECT_LT(ExactWelfare(g, gseed), threshold);
}

TEST(GadgetBehaviourTest, YesNoGapSeparatesInstances) {
  // The full Claim 3 statement: with the same N, the YES instance's
  // achievable welfare strictly exceeds the NO instance's optimum scaled
  // by c = 0.4. (Welfare values are normalized per d-node count since the
  // instances have different n.)
  const std::size_t N_yes = 60, N_no = 80;
  const Theorem2Gadget yes = BuildTheorem2Gadget(YesInstance(), N_yes);
  const Theorem2Gadget no = BuildTheorem2Gadget(NoInstance(), N_no);

  Allocation yes_alloc(4);
  yes_alloc.Add(yes.s_nodes[0], 0);
  yes_alloc.Add(yes.s_nodes[1], 0);
  const double yes_per_d =
      ExactWelfare(yes, yes_alloc) / static_cast<double>(N_yes * N_yes);

  double no_best = 0;
  for (std::size_t a = 0; a < no.s_nodes.size(); ++a) {
    for (std::size_t b = a + 1; b < no.s_nodes.size(); ++b) {
      Allocation alloc(4);
      alloc.Add(no.s_nodes[a], 0);
      alloc.Add(no.s_nodes[b], 0);
      no_best = std::max(no_best, ExactWelfare(no, alloc));
    }
  }
  const double no_per_d = no_best / static_cast<double>(N_no * N_no);
  EXPECT_LT(no_per_d, 0.4 * yes_per_d);
}

}  // namespace
}  // namespace cwm
