// Bit-equality tests for the word-parallel diffusion kernel
// (simulate/packed_world.h): every lane of every packed block must
// reproduce the scalar UicSimulator outcome of its world exactly, and the
// estimator's packed batch paths must be bit-identical to the scalar
// snapshot/streaming paths — at 1/2/8 threads, across full and partial
// lane blocks (worlds 1/63/64/65/1000), for empty allocations, under the
// zero-budget fallback, and with the wide (AVX2-dispatched) arm on or off.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "exp/configs.h"
#include "graph/graph_builder.h"
#include "model/allocation.h"
#include "obs/metrics.h"
#include "simulate/estimator.h"
#include "simulate/packed_world.h"
#include "simulate/uic_simulator.h"
#include "simulate/world.h"
#include "simulate/world_pool.h"

namespace cwm {
namespace {

/// The estimator-batch test graph: reproducible, mixed probabilities,
/// including the p = 0 and p = 1 EdgeWorld short-circuit cases.
Graph TestGraph() {
  GraphBuilder b(120);
  Rng rng(42);
  for (int e = 0; e < 600; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(120));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(120));
    if (u == v) continue;
    double p = rng.NextDouble();
    if (e % 17 == 0) p = 1.0;
    if (e % 23 == 0) p = 0.0;
    b.AddEdge(u, v, p);
  }
  return std::move(b).Build();
}

/// Candidate allocations spanning the shapes the algorithms submit.
std::vector<Allocation> Candidates(int num_items) {
  std::vector<Allocation> out;
  out.emplace_back(num_items);  // empty allocation
  Allocation single(num_items);
  single.Add(3, 0);
  out.push_back(single);
  Allocation spread(num_items);
  for (NodeId v = 0; v < 10; ++v) spread.Add(v * 11, 0);
  out.push_back(spread);
  if (num_items >= 2) {
    Allocation both(num_items);
    both.Add(5, 0);
    both.Add(5, 1);
    both.Add(40, 1);
    out.push_back(both);
  }
  for (ItemId i = 2; i < num_items; ++i) {
    Allocation extra(num_items);
    for (NodeId v = 0; v < 4; ++v) extra.Add(v * 13 + i, i);
    out.push_back(extra);
  }
  return out;
}

void ExpectStatsBitEqual(const WelfareStats& a, const WelfareStats& b) {
  EXPECT_EQ(a.welfare, b.welfare);
  EXPECT_EQ(a.adopting_nodes, b.adopting_nodes);
  ASSERT_EQ(a.adopters_per_item.size(), b.adopters_per_item.size());
  for (std::size_t i = 0; i < a.adopters_per_item.size(); ++i) {
    EXPECT_EQ(a.adopters_per_item[i], b.adopters_per_item[i]);
  }
}

EstimatorOptions PackedOpts(int worlds, unsigned threads, uint64_t seed) {
  return {.num_worlds = worlds,
          .seed = seed,
          .num_threads = threads,
          .packed_min_worlds = 1,
          .packed_min_mean_prob = 0.0};
}

EstimatorOptions ScalarOpts(int worlds, unsigned threads, uint64_t seed) {
  return {.num_worlds = worlds,
          .seed = seed,
          .num_threads = threads,
          .packed_kernel = false};
}

// Lane-level harness: every lane of every block must reproduce the scalar
// simulator's WorldOutcome for world `c + (b*64 + l) * chunks` exactly —
// the most surgical check of the lane order, edge masks, transition
// planes, and canonical aggregation.
TEST(PackedWorldTest, EveryLaneMatchesScalarWorldOutcome) {
  const Graph g = TestGraph();
  for (const UtilityConfig& c :
       {MakeConfigC5(), MakeConfigC1(), MakeThreeItemConfig()}) {
    const uint64_t seed = 0xFEEDu ^ static_cast<uint64_t>(c.num_items());
    const int num_worlds = 130;
    const std::size_t chunks = 3;
    const PackedWorldSet set(g, c, seed, num_worlds, chunks,
                             /*num_threads=*/2);
    ASSERT_EQ(set.chunks(), chunks);
    UicSimulator sim(g, c);
    PackedDiffusion engine(g, c);
    const std::vector<Allocation> candidates = Candidates(c.num_items());
    for (const Allocation& alloc : candidates) {
      for (std::size_t ch = 0; ch < chunks; ++ch) {
        const auto blocks = set.ChunkBlocks(ch);
        for (std::size_t b = 0; b < blocks.size(); ++b) {
          const PackedWorldSet::Block* block = &blocks[b];
          PackedOutcome out;
          engine.Run(&block, 1, alloc, &out);
          for (int l = 0; l < block->lane_count; ++l) {
            const int w = static_cast<int>(
                ch + (b * kPackedLanes + static_cast<std::size_t>(l)) *
                         chunks);
            ASSERT_LT(w, num_worlds);
            const EdgeWorld edges{WorldEdgeSeedOf(seed, w)};
            Rng noise_rng = WorldNoiseRngOf(seed, w);
            const WorldUtilityTable table(c, noise_rng);
            const WorldOutcome ref = sim.RunWorld(alloc, edges, table);
            EXPECT_EQ(out.welfare[l], ref.welfare) << "world " << w;
            EXPECT_EQ(out.adopting_nodes[l], ref.adopting_nodes);
            EXPECT_EQ(out.one_sided_01[l], ref.one_sided_exposure_01);
            for (ItemId i = 0; i < c.num_items(); ++i) {
              EXPECT_EQ(
                  out.adopters[static_cast<std::size_t>(i) * kPackedLanes +
                               l],
                  ref.adopters_per_item[i])
                  << "world " << w << " item " << i;
            }
          }
        }
      }
    }
  }
}

class PackedBatchTest
    : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(PackedBatchTest, StatsBatchBitEqualsScalar) {
  const auto [threads, worlds] = GetParam();
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  const WelfareEstimator packed(g, c, PackedOpts(worlds, threads, 77));
  const WelfareEstimator scalar(g, c, ScalarOpts(worlds, threads, 77));
  const std::vector<WelfareStats> got = packed.StatsBatch(candidates);
  const std::vector<WelfareStats> want = scalar.StatsBatch(candidates);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    ExpectStatsBitEqual(got[j], want[j]);
  }
  // The packed estimator never materialized scalar snapshots.
  EXPECT_EQ(packed.snapshot_stats().snapshotted, 0);
}

TEST_P(PackedBatchTest, MarginalBatchesBitEqualScalar) {
  const auto [threads, worlds] = GetParam();
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  const std::vector<Allocation> extras = Candidates(c.num_items());
  const WelfareEstimator packed(g, c, PackedOpts(worlds, threads, 99));
  const WelfareEstimator scalar(g, c, ScalarOpts(worlds, threads, 99));
  Allocation base(c.num_items());
  base.Add(7, 0);
  base.Add(50, 1);
  for (const Allocation& b : {Allocation(c.num_items()), base}) {
    const std::vector<double> got = packed.MarginalWelfareBatch(b, extras);
    const std::vector<double> want = scalar.MarginalWelfareBatch(b, extras);
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t j = 0; j < got.size(); ++j) {
      EXPECT_EQ(got[j], want[j]) << "extra " << j;
    }
    const std::vector<double> got_exp =
        packed.MarginalBalancedExposureBatch(b, extras);
    const std::vector<double> want_exp =
        scalar.MarginalBalancedExposureBatch(b, extras);
    ASSERT_EQ(got_exp.size(), want_exp.size());
    for (std::size_t j = 0; j < got_exp.size(); ++j) {
      EXPECT_EQ(got_exp[j], want_exp[j]) << "extra " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    ThreadsWorlds, PackedBatchTest,
    ::testing::Combine(::testing::Values(1u, 2u, 8u),
                       ::testing::Values(1, 63, 64, 65, 1000)));

// The wide arm (4 blocks per pass, AVX2-compiled where available) must be
// bit-identical to the one-block arm. With 1000 worlds on 2 threads each
// chunk has 8 blocks, so grouping genuinely engages.
TEST(PackedWorldTest, WideArmBitEqualsNarrowArm) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  EstimatorOptions wide = PackedOpts(1000, 2, 31);
  EstimatorOptions narrow = wide;
  narrow.packed_wide = false;
  const WelfareEstimator wide_est(g, c, wide);
  const WelfareEstimator narrow_est(g, c, narrow);
  const std::vector<WelfareStats> a = wide_est.StatsBatch(candidates);
  const std::vector<WelfareStats> b = narrow_est.StatsBatch(candidates);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t j = 0; j < a.size(); ++j) ExpectStatsBitEqual(a[j], b[j]);
  // Informational only — results above hold either way.
  (void)PackedAvx2Active();
}

TEST(PackedWorldTest, ZeroBudgetFallsBackToScalarPath) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  Counter& fallback =
      MetricsRegistry::Global().GetCounter("simulate.packed_fallback");
  const uint64_t fallback_before = fallback.value();
  EstimatorOptions starved = PackedOpts(64, 2, 13);
  starved.snapshot_budget_bytes = 0;
  const WelfareEstimator est(g, c, starved);
  const WelfareEstimator scalar(g, c, ScalarOpts(64, 2, 13));
  const std::vector<WelfareStats> got = est.StatsBatch(candidates);
  const std::vector<WelfareStats> want = scalar.StatsBatch(candidates);
  for (std::size_t j = 0; j < got.size(); ++j) {
    ExpectStatsBitEqual(got[j], want[j]);
  }
  EXPECT_GT(fallback.value(), fallback_before);
  // The fallback streams (budget 0 disables snapshots too).
  EXPECT_EQ(est.snapshot_stats().snapshotted, 0);
}

TEST(PackedWorldTest, BelowMinWorldsUsesScalarSnapshots) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC1();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  // Default packed_min_worlds = 32: a 20-world batch snapshots as before.
  const WelfareEstimator est(g, c, {.num_worlds = 20, .seed = 21});
  const std::vector<WelfareStats> got = est.StatsBatch(candidates);
  EXPECT_EQ(est.snapshot_stats().snapshotted, 20);
  const WelfareEstimator scalar(g, c, ScalarOpts(20, 0, 21));
  const std::vector<WelfareStats> want = scalar.StatsBatch(candidates);
  for (std::size_t j = 0; j < got.size(); ++j) {
    ExpectStatsBitEqual(got[j], want[j]);
  }
}

// The regime heuristic: a weak-tie graph (mean edge probability below
// packed_min_mean_prob) takes the scalar snapshot path under default
// options, because near-disjoint per-world cascades make word-parallel
// evaluation a loss. Forcing the threshold to 0 packs anyway, and the
// results are bit-identical either way — the knob is speed-only.
TEST(PackedWorldTest, WeakTieGraphDefaultsToScalarPath) {
  GraphBuilder b(120);
  Rng rng(43);
  for (int e = 0; e < 600; ++e) {
    const NodeId u = static_cast<NodeId>(rng.NextBounded(120));
    const NodeId v = static_cast<NodeId>(rng.NextBounded(120));
    if (u == v) continue;
    b.AddEdge(u, v, 0.05);  // mean prob 0.05 << default threshold 0.4
  }
  const Graph g = std::move(b).Build();
  const UtilityConfig c = MakeConfigC5();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  // Defaults (packed_kernel on, threshold 0.4): scalar snapshots engage.
  const WelfareEstimator heuristic(g, c,
                                   {.num_worlds = 64, .seed = 91,
                                    .num_threads = 2});
  const std::vector<WelfareStats> want = heuristic.StatsBatch(candidates);
  EXPECT_EQ(heuristic.snapshot_stats().snapshotted, 64);
  // Threshold 0: packed engages on the same graph, bit-identically.
  const WelfareEstimator forced(g, c, PackedOpts(64, 2, 91));
  const std::vector<WelfareStats> got = forced.StatsBatch(candidates);
  EXPECT_EQ(forced.snapshot_stats().snapshotted, 0);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j) {
    ExpectStatsBitEqual(got[j], want[j]);
  }
}

TEST(PackedWorldTest, PoolStoreConcurrentSameKeyBuildsOnce) {
  // The serve daemon's workers hit one engine's store concurrently: all
  // same-key callers must share a single build and pointer.
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  WorldPoolStore store(64ull << 20);
  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<const WorldPool>> pools(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      pools[t] = store.GetOrBuild(g, c, /*seed=*/77, /*num_worlds=*/64,
                                  /*num_threads=*/1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(pools[t], nullptr);
    EXPECT_EQ(pools[t], pools[0]);
  }
  EXPECT_EQ(store.stats().pools_built, 1u);
  EXPECT_EQ(store.stats().pool_reuses, kThreads - 1u);
}

TEST(PackedWorldTest, PoolStoreConcurrentDistinctKeysAllMaterialize) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  WorldPoolStore store(256ull << 20);
  constexpr int kThreads = 6;
  std::vector<std::shared_ptr<const WorldPool>> pools(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Distinct seeds = distinct keys: builds may run in parallel.
      pools[t] = store.GetOrBuild(g, c, /*seed=*/100 + t,
                                  /*num_worlds=*/32, /*num_threads=*/1);
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t) {
    ASSERT_NE(pools[t], nullptr);
    for (int u = 0; u < t; ++u) EXPECT_NE(pools[t], pools[u]);
  }
  EXPECT_EQ(store.stats().pools_built, static_cast<uint64_t>(kThreads));
}

TEST(PackedWorldTest, PoolStoreSharesPackedSetsAcrossEstimators) {
  const Graph g = TestGraph();
  const UtilityConfig c = MakeConfigC5();
  const std::vector<Allocation> candidates = Candidates(c.num_items());
  WorldPoolStore store(64ull << 20);
  EstimatorOptions opts = PackedOpts(64, 2, 55);
  opts.pool_store = &store;
  const WelfareEstimator first(g, c, opts);
  const std::vector<WelfareStats> a = first.StatsBatch(candidates);
  EXPECT_EQ(store.stats().pools_built, 1u);
  const WelfareEstimator second(g, c, opts);
  const std::vector<WelfareStats> b = second.StatsBatch(candidates);
  EXPECT_EQ(store.stats().pools_built, 1u);
  EXPECT_GE(store.stats().pool_reuses, 1u);
  for (std::size_t j = 0; j < a.size(); ++j) ExpectStatsBitEqual(a[j], b[j]);
}

}  // namespace
}  // namespace cwm
