// End-to-end integration tests: full algorithm pipelines on paper-like
// (scaled-down) networks and configurations, checking the qualitative
// claims of §6 — welfare ordering across algorithms, the SupGRD-vs-
// SeqGRD-NM gap under C6, adoption redistribution (Table 6), and the
// Last.fm configuration pipeline.
#include <gtest/gtest.h>

#include <vector>

#include "algo/max_grd.h"
#include "algo/seq_grd.h"
#include "algo/sup_grd.h"
#include "baselines/greedy_wm.h"
#include "baselines/simple_alloc.h"
#include "baselines/tcim.h"
#include "exp/configs.h"
#include "exp/networks.h"
#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "rrset/imm.h"
#include "rrset/prima_plus.h"
#include "simulate/estimator.h"

namespace cwm {
namespace {

AlgoParams TestParams(uint64_t seed = 3) {
  AlgoParams p;
  p.imm = {.epsilon = 0.5, .ell = 1.0, .seed = seed};
  p.estimator = {.num_worlds = 300, .seed = seed + 1};
  return p;
}

class SmallNetworkTest : public ::testing::Test {
 protected:
  SmallNetworkTest()
      : graph_(WithWeightedCascade(BarabasiAlbert(1200, 2, 5))) {}
  Graph graph_;
};

TEST_F(SmallNetworkTest, SeqGrdBeatsArbitrarySeedsOnC1) {
  const UtilityConfig c = MakeConfigC1();
  const AlgoParams params = TestParams(7);
  const Allocation seq =
      SeqGrdNm(graph_, c, Allocation(2), {0, 1}, {10, 10}, params);
  // Arbitrary low-degree allocation for contrast.
  Allocation naive(2);
  for (NodeId v = 0; v < 10; ++v) {
    naive.Add(1100 + v, 0);
    naive.Add(1110 + v, 1);
  }
  WelfareEstimator est(graph_, c, {.num_worlds = 1500, .seed = 11});
  EXPECT_GT(est.Welfare(seq), est.Welfare(naive));
}

TEST_F(SmallNetworkTest, WelfareOrderingOnC1MatchesFig4) {
  // Fig 4(a): SeqGRD / SeqGRD-NM >= TCIM and MaxGRD on pure competition
  // with comparable utilities.
  const UtilityConfig c = MakeConfigC1();
  const AlgoParams params = TestParams(13);
  const BudgetVector budgets{10, 10};
  const Allocation seq =
      SeqGrdNm(graph_, c, Allocation(2), {0, 1}, budgets, params);
  const Allocation max =
      MaxGrd(graph_, c, Allocation(2), {0, 1}, budgets, params);
  const Allocation tcim =
      Tcim(graph_, c, Allocation(2), {0, 1}, budgets, params);
  WelfareEstimator est(graph_, c, {.num_worlds = 1500, .seed = 17});
  const double w_seq = est.Welfare(seq);
  // MaxGRD leaves one item's welfare on the table under comparable
  // utilities; SeqGRD should dominate it clearly.
  EXPECT_GT(w_seq, est.Welfare(max));
  // TCIM stacks both items onto the same top seeds; at this small scale
  // the gap is within estimator noise, so only check SeqGRD is not
  // dominated (the fig4 bench shows the full-scale separation).
  EXPECT_GT(w_seq * 1.1, est.Welfare(tcim));
}

TEST_F(SmallNetworkTest, MaxGrdCompetitiveOnHighGapC2) {
  // With a 10x utility gap, allocating only the superior item is nearly
  // optimal: MaxGRD within a modest factor of SeqGRD.
  const UtilityConfig c = MakeConfigC2();
  const AlgoParams params = TestParams(19);
  const Allocation seq =
      SeqGrdNm(graph_, c, Allocation(2), {0, 1}, {10, 10}, params);
  const Allocation max =
      MaxGrd(graph_, c, Allocation(2), {0, 1}, {10, 10}, params);
  WelfareEstimator est(graph_, c, {.num_worlds = 1500, .seed = 23});
  EXPECT_GT(est.Welfare(max), 0.7 * est.Welfare(seq));
}

TEST_F(SmallNetworkTest, SupGrdBeatsSeqGrdNmOnC6) {
  // §6.2.3: with the inferior item fixed on the top IMM seeds and a large
  // utility gap (C6), SupGRD's welfare-aware selection beats SeqGRD-NM's
  // overlap-avoiding selection.
  const UtilityConfig c = MakeConfigC6();
  const AlgoParams params = TestParams(29);
  const ImmResult top = Imm(graph_, 20, params.imm);
  Allocation sp(2);
  for (NodeId v : top.seeds) sp.Add(v, 1);

  const Allocation sup = SupGrd(graph_, c, sp, 10, params);
  const Allocation seq = SeqGrdNm(graph_, c, sp, {0}, {10, 1}, params);
  WelfareEstimator est(graph_, c, {.num_worlds = 1500, .seed = 31});
  const double w_sup = est.Welfare(Allocation::Union(sup, sp));
  const double w_seq = est.Welfare(Allocation::Union(seq, sp));
  EXPECT_GE(w_sup * 1.02, w_seq);  // SupGRD at least matches, usually wins
}

TEST_F(SmallNetworkTest, AdoptionShiftsToSuperiorItem) {
  // Table 6's qualitative claim: versus Round-robin, SeqGRD-NM keeps the
  // total adoption count roughly constant but shifts adoptions from the
  // inferior to the superior item.
  const UtilityConfig c = MakeLastFmConfig();
  const AlgoParams params = TestParams(37);
  const std::vector<ItemId> items{0, 1, 2, 3};
  const BudgetVector budgets{5, 5, 5, 5};
  const ImmResult prima = PrimaPlus(graph_, {}, budgets, 20, params.imm);

  const Allocation block = BlockAllocate(4, prima.seeds, items, budgets);
  const Allocation rr = RoundRobinAllocate(4, prima.seeds, items, budgets);
  WelfareEstimator est(graph_, c, {.num_worlds = 1000, .seed = 41});
  const WelfareStats s_block = est.Stats(block);
  const WelfareStats s_rr = est.Stats(rr);

  // Block (SeqGRD-NM) welfare >= round-robin welfare.
  EXPECT_GE(s_block.welfare * 1.05, s_rr.welfare);
  // Superior item (indie) gains adopters; most-inferior loses.
  EXPECT_GE(s_block.adopters_per_item[0] * 1.05,
            s_rr.adopters_per_item[0]);
  EXPECT_LE(s_block.adopters_per_item[3],
            s_rr.adopters_per_item[3] * 1.05);
  // Total adoption roughly unchanged (within 10%).
  double total_block = 0, total_rr = 0;
  for (int i = 0; i < 4; ++i) {
    total_block += s_block.adopters_per_item[i];
    total_rr += s_rr.adopters_per_item[i];
  }
  EXPECT_NEAR(total_block, total_rr, 0.1 * total_rr + 5.0);
}

TEST_F(SmallNetworkTest, MultiItemWelfareGrowsWithItemsForSeqGrd) {
  // Fig 6(b): SeqGRD-NM welfare grows with the number of items; MaxGRD's
  // does not (it only ever allocates one).
  const AlgoParams params = TestParams(43);
  double prev_seq = 0.0;
  for (int m = 1; m <= 3; ++m) {
    const UtilityConfig c = MakeUniformPureCompetition(m);
    std::vector<ItemId> items;
    BudgetVector budgets(m, 10);
    for (ItemId i = 0; i < m; ++i) items.push_back(i);
    const Allocation seq =
        SeqGrdNm(graph_, c, Allocation(m), items, budgets, params);
    WelfareEstimator est(graph_, c, {.num_worlds = 800, .seed = 47});
    const double w = est.Welfare(seq);
    EXPECT_GE(w * 1.05, prev_seq);
    prev_seq = w;
  }
}

TEST(LargerNetworkTest, SeqGrdNmScalesToDoubanMovieLike) {
  // Smoke-test the full Fig 3/4 pipeline at the Douban-Movie scale.
  const Graph g = WithWeightedCascade(DoubanMovieLike(5));
  const UtilityConfig c = MakeConfigC1();
  AlgoParams params = TestParams(53);
  AlgoDiagnostics diag;
  const Allocation alloc =
      SeqGrdNm(g, c, Allocation(2), {0, 1}, {10, 10}, params, &diag);
  EXPECT_EQ(alloc.SeedsOf(0).size(), 10u);
  EXPECT_EQ(alloc.SeedsOf(1).size(), 10u);
  EXPECT_GT(diag.rr_count, 1000u);
  WelfareEstimator est(g, c, {.num_worlds = 300, .seed = 59});
  EXPECT_GT(est.Welfare(alloc), 0.0);
}

TEST(GreedyWmIntegrationTest, ComparableWelfareToSeqGrdSmallScale) {
  // §6.2.2: greedyWM's welfare is consistently good; check it lands within
  // a factor of SeqGRD-NM's on a small graph (it is far slower, which the
  // fig3 bench demonstrates).
  const Graph g = WithWeightedCascade(BarabasiAlbert(400, 2, 61));
  const UtilityConfig c = MakeConfigC1();
  const AlgoParams params = TestParams(67);
  const Allocation seq =
      SeqGrdNm(g, c, Allocation(2), {0, 1}, {5, 5}, params);
  const Allocation gwm = GreedyWm(g, c, Allocation(2), {0, 1}, {5, 5},
                                  params, {.candidate_pool = 40});
  WelfareEstimator est(g, c, {.num_worlds = 1500, .seed = 71});
  EXPECT_GT(est.Welfare(gwm), 0.5 * est.Welfare(seq));
}

}  // namespace
}  // namespace cwm
