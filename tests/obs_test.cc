// Tests for the observability subsystem (src/obs/): trace recorder +
// spans, metrics registry, phase attribution — and the subsystem's hard
// invariant: tracing is observation only, so a traced sweep's artifacts
// are byte-identical to an untraced one at any thread count.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase.h"
#include "obs/trace.h"
#include "scenario/registry.h"
#include "scenario/sink.h"
#include "scenario/sweep.h"
#include "support/thread_pool.h"

namespace cwm {
namespace {

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// TraceRecorder + spans.
// ---------------------------------------------------------------------------

TEST(TraceTest, NoRecorderMeansNoRecording) {
  ASSERT_EQ(TraceRecorder::Current(), nullptr);
  // The disabled path must be safe to execute (spans and instants are
  // no-ops), not merely cheap.
  {
    CWM_TRACE_SPAN("test.disabled", {{"k", 1}});
    CWM_TRACE_INSTANT("test.disabled_instant");
  }
  TraceRecorder recorder;
  EXPECT_TRUE(recorder.snapshot_events().empty());
  EXPECT_EQ(recorder.events_dropped(), 0u);
}

TEST(TraceTest, SpansRecordNestingArgsAndOrder) {
  TraceRecorder recorder;
  recorder.Install();
  {
    CWM_TRACE_SPAN("test.outer", {{"count", 2}, {"label", "abc"}});
    {
      CWM_TRACE_SPAN("test.inner", {{"flag", true}, {"x", 1.5}});
    }
    CWM_TRACE_INSTANT("test.mark", {{"stage", "mid"}});
  }
  recorder.Uninstall();

  const std::vector<TraceEvent> events = recorder.snapshot_events();
  ASSERT_EQ(events.size(), 3u);
  // Completion order within timestamp sort: the outer span starts first.
  EXPECT_STREQ(events[0].name, "test.outer");
  EXPECT_EQ(events[0].ph, 'X');
  ASSERT_EQ(events[0].num_args, 2u);
  EXPECT_STREQ(events[0].args[0].key, "count");
  EXPECT_EQ(events[0].args[0].kind, TraceArg::Kind::kInt);
  EXPECT_EQ(events[0].args[0].int_value, 2);
  EXPECT_EQ(events[0].args[1].kind, TraceArg::Kind::kString);
  EXPECT_STREQ(events[0].args[1].string_value, "abc");

  EXPECT_STREQ(events[1].name, "test.inner");
  EXPECT_EQ(events[1].args[0].kind, TraceArg::Kind::kBool);
  EXPECT_EQ(events[1].args[1].kind, TraceArg::Kind::kDouble);
  // The inner span nests within the outer one.
  EXPECT_GE(events[1].ts_ns, events[0].ts_ns);
  EXPECT_LE(events[1].ts_ns + events[1].dur_ns,
            events[0].ts_ns + events[0].dur_ns);

  EXPECT_STREQ(events[2].name, "test.mark");
  EXPECT_EQ(events[2].ph, 'i');

  // Timestamps are sorted ascending after the merge.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceTest, ThreadsGetDistinctTidsAndMergeSorted) {
  TraceRecorder recorder;
  recorder.Install();
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      for (int i = 0; i < 5; ++i) {
        CWM_TRACE_SPAN("test.worker", {{"thread", t}, {"i", i}});
      }
    });
  }
  for (std::thread& t : threads) t.join();
  recorder.Uninstall();

  const std::vector<TraceEvent> events = recorder.snapshot_events();
  ASSERT_EQ(events.size(), 15u);
  std::set<uint32_t> tids;
  for (const TraceEvent& e : events) tids.insert(e.tid);
  EXPECT_EQ(tids.size(), 3u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].ts_ns, events[i - 1].ts_ns);
  }
}

TEST(TraceTest, PerThreadCapDropsAndCounts) {
  TraceRecorder recorder(TraceRecorderOptions{.max_events_per_thread = 4});
  recorder.Install();
  for (int i = 0; i < 10; ++i) CWM_TRACE_INSTANT("test.capped");
  recorder.Uninstall();
  EXPECT_EQ(recorder.snapshot_events().size(), 4u);
  EXPECT_EQ(recorder.events_dropped(), 6u);
}

TEST(TraceTest, ReinstallAfterUninstallKeepsBuffersSeparate) {
  // A thread's cached buffer belongs to one recorder generation: after
  // switching recorders, the same thread must write into the new one.
  TraceRecorder first;
  first.Install();
  CWM_TRACE_INSTANT("test.first");
  first.Uninstall();

  TraceRecorder second;
  second.Install();
  CWM_TRACE_INSTANT("test.second");
  second.Uninstall();

  ASSERT_EQ(first.snapshot_events().size(), 1u);
  EXPECT_STREQ(first.snapshot_events()[0].name, "test.first");
  ASSERT_EQ(second.snapshot_events().size(), 1u);
  EXPECT_STREQ(second.snapshot_events()[0].name, "test.second");
}

TEST(TraceTest, WriteChromeJsonShape) {
  TraceRecorder recorder;
  recorder.Install();
  {
    CWM_TRACE_SPAN("test.span", {{"k", 7}, {"name", "a\"b"}});
  }
  CWM_TRACE_INSTANT("test.instant");
  recorder.Uninstall();

  std::ostringstream out;
  recorder.WriteChromeJson(out);
  const std::string json = out.str();

  EXPECT_NE(json.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            std::string::npos);
  EXPECT_NE(json.find("\"name\":\"test.span\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"k\":7,\"name\":\"a\\\"b\"}"),
            std::string::npos);
  // Timestamps are rebased to the earliest event.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  // No drops, so no truncation metadata.
  EXPECT_EQ(json.find("events_dropped"), std::string::npos);
}

TEST(TraceTest, WriteChromeJsonReportsDrops) {
  TraceRecorder recorder(TraceRecorderOptions{.max_events_per_thread = 1});
  recorder.Install();
  CWM_TRACE_INSTANT("test.kept");
  CWM_TRACE_INSTANT("test.dropped");
  recorder.Uninstall();
  std::ostringstream out;
  recorder.WriteChromeJson(out);
  EXPECT_NE(out.str().find("\"metadata\":{\"events_dropped\":1}"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Metrics.
// ---------------------------------------------------------------------------

TEST(MetricsTest, CountersAndGaugesAccumulate) {
  MetricsRegistry registry;
  Counter& c = registry.GetCounter("test.counter");
  c.Add(2);
  c.Add(3);
  EXPECT_EQ(c.value(), 5u);
  // Same name -> same instrument.
  EXPECT_EQ(&registry.GetCounter("test.counter"), &c);

  Gauge& g = registry.GetGauge("test.gauge");
  g.Set(1.5);
  g.Set(2.5);
  EXPECT_EQ(g.value(), 2.5);

  registry.ResetForTest();
  EXPECT_EQ(c.value(), 0u);  // reference survived the reset
  EXPECT_EQ(g.value(), 0.0);
}

TEST(MetricsTest, HistogramBucketEdgesAreInclusive) {
  static constexpr double kBounds[] = {1.0, 2.0, 4.0};
  MetricsRegistry registry;
  Histogram& h = registry.GetHistogram("test.hist", kBounds);
  ASSERT_EQ(h.num_buckets(), 4u);

  h.Observe(0.5);  // bucket 0
  h.Observe(1.0);  // bucket 0 (inclusive upper edge)
  h.Observe(1.5);  // bucket 1
  h.Observe(2.0);  // bucket 1
  h.Observe(4.0);  // bucket 2
  h.Observe(5.0);  // overflow

  EXPECT_EQ(h.bucket_count(0), 2u);
  EXPECT_EQ(h.bucket_count(1), 2u);
  EXPECT_EQ(h.bucket_count(2), 1u);
  EXPECT_EQ(h.bucket_count(3), 1u);
  EXPECT_EQ(h.total_count(), 6u);
  EXPECT_DOUBLE_EQ(h.sum(), 14.0);

  // Re-registration with the same bounds returns the same instrument.
  EXPECT_EQ(&registry.GetHistogram("test.hist", kBounds), &h);
}

TEST(MetricsTest, SnapshotIsNameSorted) {
  MetricsRegistry registry;
  registry.GetCounter("z.last").Add(1);
  registry.GetCounter("a.first").Add(2);
  registry.GetGauge("m.gauge").Set(3.0);

  const MetricsSnapshot snapshot = registry.Snapshot();
  ASSERT_EQ(snapshot.counters.size(), 2u);
  EXPECT_EQ(snapshot.counters[0].first, "a.first");
  EXPECT_EQ(snapshot.counters[0].second, 2u);
  EXPECT_EQ(snapshot.counters[1].first, "z.last");
  ASSERT_EQ(snapshot.gauges.size(), 1u);
  EXPECT_EQ(snapshot.gauges[0].first, "m.gauge");
}

TEST(MetricsTest, MetricsToJsonShape) {
  MetricsSnapshot snapshot;
  snapshot.counters = {{"cache.hits", 3}};
  snapshot.gauges = {{"pool.resident_mb", 1.5}};
  MetricsSnapshot::HistogramValue h;
  h.name = "scenario.task_seconds";
  h.bounds = {0.01, 0.1};
  h.counts = {1, 0, 2};
  h.total_count = 3;
  h.sum = 5.25;
  snapshot.histograms.push_back(h);

  const std::string json = MetricsToJson(snapshot);
  EXPECT_NE(json.find("\"counters\":{\"cache.hits\":3}"), std::string::npos);
  EXPECT_NE(json.find("\"pool.resident_mb\":1.5"), std::string::npos);
  EXPECT_NE(json.find("\"scenario.task_seconds\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":3"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":0.01,\"count\":1}"), std::string::npos);
  EXPECT_NE(json.find("{\"le\":\"inf\",\"count\":2}"), std::string::npos);
}

TEST(MetricsTest, GlobalRegistryHasProcessLifetime) {
  Counter& c = MetricsRegistry::Global().GetCounter("obs_test.probe");
  const uint64_t before = c.value();
  c.Add(1);
  EXPECT_EQ(MetricsRegistry::Global().GetCounter("obs_test.probe").value(),
            before + 1);
}

TEST(MetricsTest, LineFormatterMatchesCacheStatsContract) {
  // The exact grammar CI greps from cwm_run's stderr cache line
  // ("graphs hits=", "rr hits=" — see tools/cwm_run.cc).
  MetricsLineFormatter line;
  line.Count("graphs hits", 1)
      .Count("misses", 2)
      .Sep("; ")
      .Count("rr hits", 3)
      .Count("misses", 4);
  EXPECT_EQ(line.str(), "graphs hits=1 misses=2; rr hits=3 misses=4");

  MetricsLineFormatter pools;
  pools.Count("built", 2).Count("reused", 10).Fixed("resident", 12.34, 1,
                                                    "MB");
  EXPECT_EQ(pools.str(), "built=2 reused=10 resident=12.3MB");
}

// ---------------------------------------------------------------------------
// Phase attribution.
// ---------------------------------------------------------------------------

TEST(PhaseTest, TimerIsNoOpWithoutCollector) {
  EXPECT_FALSE(PhaseCollector::Active());
  ScopedPhaseTimer timer(Phase::kSample);  // must not crash or leak state
  EXPECT_FALSE(PhaseCollector::Active());
}

TEST(PhaseTest, CollectorAttributesTimeAndIgnoresNestedScopes) {
  PhaseCollector collector;
  EXPECT_TRUE(PhaseCollector::Active());
  {
    ScopedPhaseTimer estimate(Phase::kEstimate);
    // A nested scope of any phase is a no-op: only the outermost open
    // scope on the thread times (the Spread -> MarginalSpread case).
    ScopedPhaseTimer nested(Phase::kSample);
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GT(collector.times().estimate_s(), 0.0);
  EXPECT_EQ(collector.times().sample_s(), 0.0);
  EXPECT_EQ(collector.times().select_s(), 0.0);
}

TEST(PhaseTest, InnermostCollectorWins) {
  PhaseCollector outer;
  {
    PhaseCollector inner;
    ScopedPhaseTimer timer(Phase::kSelect);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    // Destruction order: timer first, then inner — inner receives.
  }
  EXPECT_EQ(outer.times().select_s(), 0.0);

  // After the inner collector is gone, the outer one receives again.
  {
    ScopedPhaseTimer timer(Phase::kSelect);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GT(outer.times().select_s(), 0.0);
}

TEST(PhaseTest, PhaseTimesAccumulate) {
  PhaseTimes times;
  times.Add(Phase::kSample, 1.0);
  times.Add(Phase::kSample, 0.5);
  times.Add(Phase::kSelect, 2.0);
  EXPECT_DOUBLE_EQ(times.sample_s(), 1.5);
  EXPECT_DOUBLE_EQ(times.select_s(), 2.0);
  EXPECT_DOUBLE_EQ(times.estimate_s(), 0.0);
}

// ---------------------------------------------------------------------------
// The invariant: tracing never changes results.
// ---------------------------------------------------------------------------

std::string UniqueTempDir() {
  static const uint64_t process_token = std::random_device{}();
  static std::atomic<uint64_t> counter{0};
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("cwm_obs_" + std::to_string(process_token) + "_" +
       std::to_string(counter.fetch_add(1)));
  fs::create_directories(dir);
  return dir.string();
}

std::string RunTinySweep(unsigned num_threads, const std::string& cache_dir) {
  const StatusOr<ScenarioSpec> spec =
      GlobalScenarioRegistry().Find("smoke-tiny");
  EXPECT_TRUE(spec.ok());
  SweepOptions options;
  options.num_threads = num_threads;
  options.cache_dir = cache_dir;
  const StatusOr<SweepResult> result = RunSweep(spec.value(), options);
  EXPECT_TRUE(result.ok());
  std::ostringstream jsonl, csv;
  WriteJsonLines(result.value(), jsonl);
  WriteCsv(result.value(), csv);
  return jsonl.str() + "\n---\n" + csv.str();
}

TEST(TraceSweepTest, TracedSweepIsByteIdenticalAndCoversAllLayers) {
  const std::string cache_dir = UniqueTempDir();

  // Baseline: no recorder installed (cold cache).
  const std::string untraced = RunTinySweep(1, cache_dir);
  ASSERT_GT(untraced.size(), 0u);

  // Traced at 1 thread.
  TraceRecorder single;
  single.Install();
  const std::string traced_1 = RunTinySweep(1, cache_dir);
  single.Uninstall();

  // Traced at 8 threads.
  TraceRecorder multi;
  multi.Install();
  const std::string traced_8 = RunTinySweep(8, cache_dir);
  multi.Uninstall();

  // Observation only: artifact bytes do not depend on tracing or on the
  // thread count (the warm cache is also bit-identical to the cold run).
  EXPECT_EQ(untraced, traced_1);
  EXPECT_EQ(untraced, traced_8);

  // The trace covers every instrumented layer (`<layer>.<verb>` names).
  for (const TraceRecorder* recorder : {&single, &multi}) {
    std::set<std::string> layers;
    for (const TraceEvent& event : recorder->snapshot_events()) {
      const std::string name = event.name;
      layers.insert(name.substr(0, name.find('.')));
    }
    EXPECT_TRUE(layers.count("rr")) << "missing rr.* spans";
    EXPECT_TRUE(layers.count("store")) << "missing store.* spans";
    EXPECT_TRUE(layers.count("simulate")) << "missing simulate.* spans";
    EXPECT_TRUE(layers.count("api")) << "missing api.* spans";
    EXPECT_TRUE(layers.count("scenario")) << "missing scenario.* spans";
    EXPECT_EQ(recorder->events_dropped(), 0u);
  }

  std::error_code ec;
  fs::remove_all(cache_dir, ec);
}

TEST(TraceSweepTest, SweepRowsCarryPhaseTimes) {
  const StatusOr<ScenarioSpec> spec =
      GlobalScenarioRegistry().Find("smoke-tiny");
  ASSERT_TRUE(spec.ok());
  SweepOptions options;
  options.num_threads = 1;
  const StatusOr<SweepResult> result = RunSweep(spec.value(), options);
  ASSERT_TRUE(result.ok());

  double sample = 0.0, estimate = 0.0;
  for (const TaskResult& row : result.value().rows) {
    if (row.skipped) continue;
    EXPECT_GE(row.sample_s, 0.0);
    EXPECT_GE(row.select_s, 0.0);
    EXPECT_GE(row.estimate_s, 0.0);
    // Phases are a breakdown of the run, not more than its wall time
    // plus evaluation; generous sanity bound only.
    sample += row.sample_s;
    estimate += row.estimate_s;
  }
  // smoke-tiny runs IMM-family algorithms and a common evaluator, so the
  // sweep as a whole must have spent time in both phases.
  EXPECT_GT(sample, 0.0);
  EXPECT_GT(estimate, 0.0);

  // The timing sink emits the phase columns only when asked.
  const SinkOptions timing{.include_timing = true};
  bool saw_phase_columns = false;
  for (const TaskResult& row : result.value().rows) {
    if (row.skipped) continue;
    const std::string json = TaskResultToJson(row, timing);
    EXPECT_NE(json.find("\"sample_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"select_s\":"), std::string::npos);
    EXPECT_NE(json.find("\"estimate_s\":"), std::string::npos);
    EXPECT_EQ(TaskResultToJson(row).find("\"sample_s\":"),
              std::string::npos);
    saw_phase_columns = true;
  }
  EXPECT_TRUE(saw_phase_columns);
}

}  // namespace
}  // namespace cwm
