// Unit tests for the support kernel: Status/StatusOr, RNG, hash coins,
// math kernel, ParallelFor.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <set>
#include <vector>

#include "support/mathx.h"
#include "support/rng.h"
#include "support/status.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace cwm {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad budget");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad budget");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad budget");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), Status::Code::kIOError);
  EXPECT_EQ(Status::Corruption("x").code(), Status::Code::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), Status::Code::kOutOfRange);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), Status::Code::kNotFound);
}

TEST(StatusOrTest, MoveOnlyFriendly) {
  StatusOr<std::vector<int>> v = std::vector<int>{1, 2, 3};
  ASSERT_TRUE(v.ok());
  std::vector<int> taken = std::move(v).value();
  EXPECT_EQ(taken.size(), 3u);
}

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(7), b(8);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, NextDoubleMeanNearHalf) {
  Rng rng(5);
  double acc = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) acc += rng.NextDouble();
  EXPECT_NEAR(acc / n, 0.5, 0.01);
}

TEST(RngTest, NextBoundedInRange) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, NextBoundedCoversAllValues) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.NextGaussian();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(19);
  Rng child = a.Split();
  // The child stream should not reproduce the parent's next outputs.
  EXPECT_NE(a.Next(), child.Next());
}

TEST(HashCoinTest, Deterministic) {
  for (uint64_t id = 0; id < 100; ++id) {
    EXPECT_EQ(HashCoin::Flip(42, id, 0.5), HashCoin::Flip(42, id, 0.5));
  }
}

TEST(HashCoinTest, FrequencyMatchesProbability) {
  int hits = 0;
  const int n = 200000;
  for (int id = 0; id < n; ++id) hits += HashCoin::Flip(1234, id, 0.25);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(HashCoinTest, ExtremeProbabilities) {
  int hits0 = 0, hits1 = 0;
  for (int id = 0; id < 1000; ++id) {
    hits0 += HashCoin::Flip(5, id, 0.0);
    hits1 += HashCoin::Flip(5, id, 1.0 - 1e-12);
  }
  EXPECT_EQ(hits0, 0);
  EXPECT_EQ(hits1, 1000);
}

TEST(HashCoinTest, UniformDeterministicAndInRange) {
  for (uint64_t id = 0; id < 100; ++id) {
    const double u = HashCoin::Uniform(7, id);
    EXPECT_EQ(u, HashCoin::Uniform(7, id));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(MathTest, LogBinomialSmallExact) {
  EXPECT_NEAR(LogBinomial(5, 2), std::log(10.0), 1e-9);
  EXPECT_NEAR(LogBinomial(10, 3), std::log(120.0), 1e-9);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 0), 0.0);
  EXPECT_DOUBLE_EQ(LogBinomial(7, 7), 0.0);
}

TEST(MathTest, LogBinomialSymmetry) {
  EXPECT_NEAR(LogBinomial(100, 30), LogBinomial(100, 70), 1e-6);
}

TEST(MathTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(NormalCdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(NormalCdf(-1.959963985), 0.025, 1e-6);
}

TEST(MathTest, NormalPdfKnownValues) {
  EXPECT_NEAR(NormalPdf(0.0), 0.39894228040143267, 1e-12);
  EXPECT_NEAR(NormalPdf(1.0), 0.24197072451914337, 1e-12);
}

TEST(MathTest, ExpectedPositivePartNormalVsMonteCarlo) {
  Rng rng(23);
  for (const double mu : {-2.0, -0.5, 0.0, 0.5, 2.0}) {
    for (const double sigma : {0.5, 1.0, 2.0}) {
      double acc = 0;
      const int n = 400000;
      for (int i = 0; i < n; ++i) {
        acc += std::max(0.0, mu + sigma * rng.NextGaussian());
      }
      EXPECT_NEAR(acc / n, ExpectedPositivePartNormal(mu, sigma), 0.02)
          << "mu=" << mu << " sigma=" << sigma;
    }
  }
}

TEST(MathTest, ExpectedPositivePartNormalDegenerateSigma) {
  EXPECT_DOUBLE_EQ(ExpectedPositivePartNormal(1.5, 0.0), 1.5);
  EXPECT_DOUBLE_EQ(ExpectedPositivePartNormal(-1.5, 0.0), 0.0);
}

TEST(MathTest, ExpectedPositivePartUniformClosedForm) {
  // mu >= a: always positive.
  EXPECT_DOUBLE_EQ(ExpectedPositivePartUniform(3.0, 1.0), 3.0);
  // mu <= -a: never positive.
  EXPECT_DOUBLE_EQ(ExpectedPositivePartUniform(-3.0, 1.0), 0.0);
  // mu = 0: E[max(0,U)] = a/4.
  EXPECT_NEAR(ExpectedPositivePartUniform(0.0, 2.0), 0.5, 1e-12);
}

TEST(MathTest, ExpectedPositivePartUniformVsMonteCarlo) {
  Rng rng(29);
  const double mu = 0.4, a = 1.0;
  double acc = 0;
  const int n = 400000;
  for (int i = 0; i < n; ++i) {
    acc += std::max(0.0, mu + a * (2 * rng.NextDouble() - 1));
  }
  EXPECT_NEAR(acc / n, ExpectedPositivePartUniform(mu, a), 0.005);
}

TEST(MathTest, GaussLegendreExactOnPolynomials) {
  // 64-point Gauss-Legendre is exact for polynomials of degree <= 127.
  const double integral =
      GaussLegendre64([](double x) { return 3 * x * x; }, -1.0, 2.0);
  EXPECT_NEAR(integral, 9.0, 1e-10);  // x^3 from -1 to 2 = 8 - (-1)
}

TEST(MathTest, GaussLegendreGaussianMass) {
  const double mass =
      GaussLegendre64([](double x) { return NormalPdf(x); }, -8.0, 8.0);
  EXPECT_NEAR(mass, 1.0, 1e-10);
}

TEST(ParallelForTest, VisitsEveryChunkOnce) {
  std::vector<int> counts(64, 0);
  ParallelFor(64, [&](std::size_t i) { counts[i]++; }, 4);
  for (int c : counts) EXPECT_EQ(c, 1);
}

TEST(ParallelForTest, InlineWhenSingleThread) {
  std::vector<int> order;
  ParallelFor(5, [&](std::size_t i) { order.push_back(static_cast<int>(i)); },
              1);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ParallelForTest, ZeroChunksIsNoop) {
  bool called = false;
  ParallelFor(0, [&](std::size_t) { called = true; }, 4);
  EXPECT_FALSE(called);
}

TEST(ParallelForTest, DefaultThreadsPositive) {
  EXPECT_GE(DefaultThreads(), 1u);
}

TEST(TimerTest, MeasuresElapsed) {
  Timer t;
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GT(t.Seconds(), 0.0);
  EXPECT_GE(t.Millis(), t.Seconds() * 1000.0 * 0.99);
  t.Reset();
  EXPECT_LT(t.Seconds(), 1.0);
}

TEST(TimerTest, NowNanosIsMonotonic) {
  uint64_t previous = Timer::NowNanos();
  EXPECT_GT(previous, 0u);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t now = Timer::NowNanos();
    EXPECT_GE(now, previous);  // steady clock: never runs backwards
    previous = now;
  }
  // The clock actually advances across real work.
  const uint64_t start = Timer::NowNanos();
  double sink = 0;
  for (int i = 0; i < 100000; ++i) sink += std::sqrt(static_cast<double>(i));
  ASSERT_GT(sink, 0.0);
  EXPECT_GT(Timer::NowNanos(), start);
}

}  // namespace
}  // namespace cwm
