// Unit tests for the graph substrate: builder, CSR invariants, probability
// models, generators, loader round-trips.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <set>
#include <string>

#include "graph/edge_prob.h"
#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/graph_builder.h"
#include "graph/loader.h"

namespace cwm {
namespace {

Graph Triangle() {
  GraphBuilder b(3);
  b.AddEdge(0, 1, 0.5);
  b.AddEdge(1, 2, 0.25);
  b.AddEdge(2, 0, 1.0);
  return std::move(b).Build();
}

TEST(GraphBuilderTest, BasicCounts) {
  const Graph g = Triangle();
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
  EXPECT_EQ(g.OutDegree(0), 1u);
  EXPECT_EQ(g.InDegree(0), 1u);
}

TEST(GraphBuilderTest, SelfLoopsDropped) {
  GraphBuilder b(2);
  b.AddEdge(0, 0, 0.9);
  b.AddEdge(0, 1, 0.5);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilderTest, ParallelEdgesMergedKeepingMaxProb) {
  GraphBuilder b(2);
  b.AddEdge(0, 1, 0.2);
  b.AddEdge(0, 1, 0.7);
  b.AddEdge(0, 1, 0.4);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 1u);
  EXPECT_FLOAT_EQ(g.OutEdges(0)[0].prob, 0.7f);
}

TEST(GraphBuilderTest, UndirectedAddsBothDirections) {
  GraphBuilder b(2);
  b.AddUndirectedEdge(0, 1, 0.3);
  const Graph g = std::move(b).Build();
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.OutEdges(0)[0].to, 1u);
  EXPECT_EQ(g.OutEdges(1)[0].to, 0u);
}

TEST(GraphTest, ForwardReverseConsistent) {
  const Graph g = Triangle();
  // Every out-edge must appear as an in-edge with the same probability and
  // a valid shared EdgeId.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    const auto out = g.OutEdges(u);
    for (std::size_t k = 0; k < out.size(); ++k) {
      const EdgeId id = g.OutEdgeId(u, k);
      bool found = false;
      for (const InEdge& e : g.InEdges(out[k].to)) {
        if (e.from == u && e.id == id) {
          EXPECT_FLOAT_EQ(e.prob, out[k].prob);
          found = true;
        }
      }
      EXPECT_TRUE(found) << "edge " << u << "->" << out[k].to;
    }
  }
}

TEST(GraphTest, EdgeIdsAreDenseAndUnique) {
  const Graph g = DirectedPreferentialAttachment(200, 3, 0.2, 77);
  std::set<EdgeId> ids;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    for (const InEdge& e : g.InEdges(v)) ids.insert(e.id);
  }
  EXPECT_EQ(ids.size(), g.num_edges());
  EXPECT_EQ(*ids.rbegin(), g.num_edges() - 1);
}

TEST(GraphTest, AverageDegree) {
  const Graph g = Triangle();
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 1.0);
}

TEST(EdgeProbTest, WeightedCascadeUsesInDegree) {
  GraphBuilder b(4);
  b.AddEdge(0, 3, 0.0);
  b.AddEdge(1, 3, 0.0);
  b.AddEdge(2, 3, 0.0);
  b.AddEdge(0, 1, 0.0);
  const Graph g = WithWeightedCascade(std::move(b).Build());
  for (const InEdge& e : g.InEdges(3)) EXPECT_FLOAT_EQ(e.prob, 1.0f / 3.0f);
  for (const InEdge& e : g.InEdges(1)) EXPECT_FLOAT_EQ(e.prob, 1.0f);
}

TEST(EdgeProbTest, ConstantProb) {
  const Graph g = WithConstantProb(Triangle(), 0.01);
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) EXPECT_FLOAT_EQ(e.prob, 0.01f);
  }
}

TEST(EdgeProbTest, TrivalencyLevelsOnly) {
  const Graph base = ErdosRenyi(500, 3000, 5);
  const Graph g = WithTrivalency(base, 99);
  int counts[3] = {0, 0, 0};
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) {
      if (e.prob == 0.1f) {
        counts[0]++;
      } else if (e.prob == 0.01f) {
        counts[1]++;
      } else {
        EXPECT_FLOAT_EQ(e.prob, 0.001f);
        counts[2]++;
      }
    }
  }
  // All three levels should appear in a 3000-edge graph.
  EXPECT_GT(counts[0], 0);
  EXPECT_GT(counts[1], 0);
  EXPECT_GT(counts[2], 0);
}

TEST(EdgeProbTest, ReassignPreservesTopology) {
  const Graph base = Triangle();
  const Graph g = WithConstantProb(base, 0.5);
  EXPECT_EQ(g.num_nodes(), base.num_nodes());
  EXPECT_EQ(g.num_edges(), base.num_edges());
}

TEST(GeneratorTest, ErdosRenyiApproximateEdgeCount) {
  const Graph g = ErdosRenyi(1000, 5000, 3);
  EXPECT_EQ(g.num_nodes(), 1000u);
  // Collisions/self-loop nudges may drop a few edges.
  EXPECT_GT(g.num_edges(), 4900u);
  EXPECT_LE(g.num_edges(), 5000u);
}

TEST(GeneratorTest, BarabasiAlbertCountsAndSymmetry) {
  const Graph g = BarabasiAlbert(2000, 2, 7);
  EXPECT_EQ(g.num_nodes(), 2000u);
  // Undirected: every edge appears in both directions.
  for (NodeId u = 0; u < g.num_nodes(); ++u) {
    for (const OutEdge& e : g.OutEdges(u)) {
      bool back = false;
      for (const OutEdge& r : g.OutEdges(e.to)) back |= (r.to == u);
      EXPECT_TRUE(back);
    }
  }
  // Average directed degree ~= 2 * edges_per_node.
  EXPECT_NEAR(g.AverageDegree(), 4.0, 0.5);
}

TEST(GeneratorTest, BarabasiAlbertHeavyTail) {
  const Graph g = BarabasiAlbert(5000, 2, 11);
  std::size_t max_deg = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_deg = std::max(max_deg, g.OutDegree(v));
  }
  // Preferential attachment produces hubs far above the mean degree (4).
  EXPECT_GT(max_deg, 40u);
}

TEST(GeneratorTest, DirectedPreferentialAttachmentShape) {
  const Graph g = DirectedPreferentialAttachment(3000, 6, 0.15, 13);
  EXPECT_EQ(g.num_nodes(), 3000u);
  EXPECT_NEAR(g.AverageDegree(), 6.0, 1.0);
  // Influence edges point influencer -> follower: out-degree hubs.
  std::size_t max_out = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    max_out = std::max(max_out, g.OutDegree(v));
  }
  EXPECT_GT(max_out, 60u);
}

TEST(GeneratorTest, WattsStrogatzDegreeRegularAtBetaZero) {
  const Graph g = WattsStrogatz(100, 3, 0.0, 17);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    EXPECT_EQ(g.OutDegree(v), 6u);  // k neighbours each side
  }
}

TEST(GeneratorTest, WattsStrogatzRewiredStillRightEdgeBudget) {
  const Graph g = WattsStrogatz(500, 4, 0.3, 19);
  // 500 * 4 undirected picks, both directions, minus merged duplicates.
  EXPECT_GT(g.num_edges(), 3600u);
  EXPECT_LE(g.num_edges(), 4000u);
}

TEST(GeneratorTest, DeterministicInSeed) {
  const Graph a = BarabasiAlbert(500, 2, 42);
  const Graph b = BarabasiAlbert(500, 2, 42);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.OutDegree(v), b.OutDegree(v));
  }
}

TEST(GeneratorTest, InducedBfsSubgraphSizes) {
  const Graph g = BarabasiAlbert(1000, 2, 23);
  for (const double frac : {0.25, 0.5, 0.75, 1.0}) {
    const Graph sub = InducedBfsSubgraph(g, frac, 31);
    EXPECT_EQ(sub.num_nodes(),
              static_cast<std::size_t>(std::ceil(frac * 1000)));
    EXPECT_LE(sub.num_edges(), g.num_edges());
  }
}

TEST(GeneratorTest, InducedBfsSubgraphPreservesProbs) {
  Graph g = WithConstantProb(BarabasiAlbert(300, 2, 29), 0.123);
  const Graph sub = InducedBfsSubgraph(g, 0.5, 37);
  for (NodeId u = 0; u < sub.num_nodes(); ++u) {
    for (const OutEdge& e : sub.OutEdges(u)) {
      EXPECT_FLOAT_EQ(e.prob, 0.123f);
    }
  }
}

class LoaderTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "/cwm_loader_test.txt";

  void WriteFile(const std::string& content) {
    std::FILE* f = std::fopen(path_.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs(content.c_str(), f);
    std::fclose(f);
  }
};

TEST_F(LoaderTest, RoundTrip) {
  const Graph g = WithWeightedCascade(BarabasiAlbert(200, 2, 41));
  ASSERT_TRUE(WriteEdgeList(g, path_).ok());
  StatusOr<Graph> loaded = ReadEdgeList(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_nodes(), g.num_nodes());
  EXPECT_EQ(loaded.value().num_edges(), g.num_edges());
}

TEST_F(LoaderTest, ParsesCommentsAndDefaults) {
  WriteFile("# header comment\n0 1\n1 2 0.5\n\n2 0 1.0\n");
  LoadOptions opts;
  opts.default_prob = 0.25;
  StatusOr<Graph> g = ReadEdgeList(path_, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 3u);
  EXPECT_FLOAT_EQ(g.value().OutEdges(0)[0].prob, 0.25f);
}

TEST_F(LoaderTest, UndirectedOption) {
  WriteFile("0 1 0.5\n");
  LoadOptions opts;
  opts.undirected = true;
  StatusOr<Graph> g = ReadEdgeList(path_, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(LoaderTest, DensifiesSparseIds) {
  WriteFile("1000000 5\n5 70000\n");
  LoadOptions opts;
  opts.default_prob = 0.5;
  StatusOr<Graph> g = ReadEdgeList(path_, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_nodes(), 3u);
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(LoaderTest, MissingProbColumnWithoutOptInIsInvalidArgument) {
  // A probability-less line with the sentinel default would silently
  // produce p = 0 edges (diffusion impossible); it must fail loudly.
  WriteFile("0 1\n");
  StatusOr<Graph> g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kInvalidArgument);
}

TEST_F(LoaderTest, ExplicitZeroDefaultProbIsAnOptIn) {
  // 0.0 is a legitimate explicit choice (an edge-probability model is
  // applied afterwards); only the unset sentinel rejects.
  WriteFile("0 1\n1 2\n");
  LoadOptions opts;
  opts.default_prob = 0.0;
  StatusOr<Graph> g = ReadEdgeList(path_, opts);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2u);
  EXPECT_FLOAT_EQ(g.value().OutEdges(0)[0].prob, 0.0f);
}

TEST_F(LoaderTest, HandlesCrlfAndExtraColumns) {
  // Windows line endings and SNAP-style trailing annotations both parse.
  WriteFile("0 1 0.5\r\n1 2 0.25 timestamp\r\n2 0\r\n");
  LoadOptions opts;
  opts.default_prob = 0.75;
  StatusOr<Graph> g = ReadEdgeList(path_, opts);
  ASSERT_TRUE(g.ok());
  ASSERT_EQ(g.value().num_edges(), 3u);
  EXPECT_FLOAT_EQ(g.value().OutEdges(0)[0].prob, 0.5f);
  EXPECT_FLOAT_EQ(g.value().OutEdges(1)[0].prob, 0.25f);
  EXPECT_FLOAT_EQ(g.value().OutEdges(2)[0].prob, 0.75f);
}

TEST_F(LoaderTest, LastLineWithoutNewlineParses) {
  WriteFile("0 1 0.5\n1 2 0.25");
  StatusOr<Graph> g = ReadEdgeList(path_);
  ASSERT_TRUE(g.ok());
  EXPECT_EQ(g.value().num_edges(), 2u);
}

TEST_F(LoaderTest, NegativeNodeIdIsCorruption) {
  WriteFile("-1 2 0.5\n");
  StatusOr<Graph> g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kCorruption);
}

TEST_F(LoaderTest, MissingFileIsIOError) {
  StatusOr<Graph> g = ReadEdgeList("/nonexistent/path/graph.txt");
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kIOError);
}

TEST_F(LoaderTest, MalformedLineIsCorruption) {
  WriteFile("0 1 0.5\nhello world\n");
  StatusOr<Graph> g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kCorruption);
}

TEST_F(LoaderTest, OutOfRangeProbabilityIsCorruption) {
  WriteFile("0 1 1.5\n");
  StatusOr<Graph> g = ReadEdgeList(path_);
  ASSERT_FALSE(g.ok());
  EXPECT_EQ(g.status().code(), Status::Code::kCorruption);
}

}  // namespace
}  // namespace cwm
