// Unit tests for the environment-knob helpers (exp/env.h).
#include <gtest/gtest.h>

#include <cstdlib>

#include "exp/env.h"

namespace cwm {
namespace {

class EnvKnobTest : public ::testing::Test {
 protected:
  static constexpr const char* kVar = "CWM_TEST_KNOB";
  void TearDown() override { unsetenv(kVar); }
};

TEST_F(EnvKnobTest, UnsetFallsBack) {
  unsetenv(kVar);
  EXPECT_EQ(EnvInt(kVar, 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 1.5);
}

TEST_F(EnvKnobTest, EmptyFallsBack) {
  setenv(kVar, "", 1);
  EXPECT_EQ(EnvInt(kVar, 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 1.5);
}

TEST_F(EnvKnobTest, ParsesPositiveValues) {
  setenv(kVar, "17", 1);
  EXPECT_EQ(EnvInt(kVar, 42), 17);
  setenv(kVar, "0.25", 1);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 0.25);
}

TEST_F(EnvKnobTest, ExplicitZeroIsHonoured) {
  // The historical bug: VAR=0 was indistinguishable from unset. An
  // explicit zero must reach callers that accept it (e.g. CWM_GREEDY=0).
  setenv(kVar, "0", 1);
  EXPECT_EQ(EnvInt(kVar, 42), 0);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 0.0);
}

TEST_F(EnvKnobTest, MinValueRejectsZeroWhereMeaningless) {
  // Knobs that need a positive value (simulation counts) opt in via
  // min_value and still fall back on zero.
  setenv(kVar, "0", 1);
  EXPECT_EQ(EnvInt(kVar, 42, /*min_value=*/1), 42);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5, /*min_value=*/1e-6), 1.5);
}

TEST_F(EnvKnobTest, BelowMinFallsBack) {
  setenv(kVar, "-3", 1);
  EXPECT_EQ(EnvInt(kVar, 42), 42);           // default min_value = 0
  EXPECT_EQ(EnvInt(kVar, 42, -10), -3);      // negatives allowed on request
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 1.5);
}

TEST_F(EnvKnobTest, GarbageFallsBack) {
  setenv(kVar, "not-a-number", 1);
  EXPECT_EQ(EnvInt(kVar, 42), 42);
  EXPECT_DOUBLE_EQ(EnvDouble(kVar, 1.5), 1.5);
}

}  // namespace
}  // namespace cwm
