// Unit tests for the item/utility model: itemset helpers, noise laws,
// utility configurations (validation, derived quantities), the per-world
// adoption solver, and allocations.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "model/allocation.h"
#include "model/items.h"
#include "model/noise.h"
#include "model/utility.h"

namespace cwm {
namespace {

TEST(ItemsTest, SingletonAndContains) {
  EXPECT_EQ(SingletonSet(0), 1u);
  EXPECT_EQ(SingletonSet(3), 8u);
  EXPECT_TRUE(Contains(0b1010, 1));
  EXPECT_FALSE(Contains(0b1010, 0));
}

TEST(ItemsTest, SetSizeAndFullSet) {
  EXPECT_EQ(SetSize(0), 0);
  EXPECT_EQ(SetSize(0b1011), 3);
  EXPECT_EQ(FullSet(3), 0b111);
  EXPECT_EQ(FullSet(0), 0);
}

TEST(ItemsTest, ForEachItemAscending) {
  std::vector<ItemId> seen;
  ForEachItem(0b1101, [&](ItemId i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<ItemId>{0, 2, 3}));
}

TEST(ItemsTest, ForEachSubsetCount) {
  int count = 0;
  ForEachSubset(0b111, [&](ItemSet) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(ItemsTest, ForEachSubsetAllAreSubsets) {
  ForEachSubset(0b1010, [&](ItemSet s) {
    EXPECT_EQ(s & ~0b1010, 0);
  });
}

TEST(NoiseTest, ZeroIsPointMass) {
  auto noise = NoiseDistribution::Zero();
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(noise.Sample(rng), 0.0);
  EXPECT_TRUE(noise.IsBounded());
  EXPECT_EQ(noise.MinSupport(), 0.0);
  EXPECT_EQ(noise.MaxSupport(), 0.0);
  EXPECT_DOUBLE_EQ(noise.ExpectedPositivePart(2.5), 2.5);
  EXPECT_DOUBLE_EQ(noise.ExpectedPositivePart(-2.5), 0.0);
}

TEST(NoiseTest, NormalMomentsAndUnbounded) {
  auto noise = NoiseDistribution::Normal(2.0);
  EXPECT_FALSE(noise.IsBounded());
  Rng rng(5);
  double sum = 0, sum2 = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = noise.Sample(rng);
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum2 / n, 4.0, 0.1);
}

TEST(NoiseTest, ClampedNormalStaysInBounds) {
  auto noise = NoiseDistribution::ClampedNormal(1.0, 0.5);
  EXPECT_TRUE(noise.IsBounded());
  EXPECT_EQ(noise.MinSupport(), -0.5);
  EXPECT_EQ(noise.MaxSupport(), 0.5);
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = noise.Sample(rng);
    EXPECT_LE(std::abs(x), 0.5);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.0, 0.01);  // symmetric clamp keeps zero mean
}

TEST(NoiseTest, ClampedNormalExpectedPositivePartVsMonteCarlo) {
  auto noise = NoiseDistribution::ClampedNormal(0.4, 0.6);
  Rng rng(11);
  for (const double mu : {-0.5, -0.1, 0.0, 0.3, 1.0}) {
    double acc = 0;
    const int n = 300000;
    for (int i = 0; i < n; ++i) acc += std::max(0.0, mu + noise.Sample(rng));
    EXPECT_NEAR(acc / n, noise.ExpectedPositivePart(mu), 0.01) << mu;
  }
}

TEST(NoiseTest, UniformSupportAndMean) {
  auto noise = NoiseDistribution::Uniform(0.7);
  EXPECT_TRUE(noise.IsBounded());
  EXPECT_EQ(noise.MinSupport(), -0.7);
  EXPECT_EQ(noise.MaxSupport(), 0.7);
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 100000; ++i) {
    const double x = noise.Sample(rng);
    EXPECT_LE(std::abs(x), 0.7);
    sum += x;
  }
  EXPECT_NEAR(sum / 100000, 0.0, 0.01);
}

UtilityConfig TwoItems(double vi, double vj, double vij, double pi,
                       double pj) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, vi).SetItemValue(1, vj).SetItemPrice(0, pi).SetItemPrice(
      1, pj);
  b.SetBundleValue(0x3, vij);
  StatusOr<UtilityConfig> config = std::move(b).Build();
  EXPECT_TRUE(config.ok()) << config.status().ToString();
  return std::move(config).value();
}

TEST(UtilityConfigTest, DetUtilityAndAdditivePrices) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 7.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(c.DetUtility(0x1), 1.0);
  EXPECT_NEAR(c.DetUtility(0x2), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(c.Price(0x3), 7.0);
  EXPECT_DOUBLE_EQ(c.DetUtility(0x3), 0.0);
  EXPECT_DOUBLE_EQ(c.DetUtility(kEmptyItemSet), 0.0);
}

TEST(UtilityConfigTest, RejectsNonMonotoneValue) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 5.0).SetItemValue(1, 3.0);
  b.SetBundleValue(0x3, 4.0);  // below V({0}) = 5: not monotone
  StatusOr<UtilityConfig> config = std::move(b).Build();
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.status().code(), Status::Code::kInvalidArgument);
}

TEST(UtilityConfigTest, RejectsNonSubmodularValue) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 2.0).SetItemValue(1, 2.0);
  b.SetBundleValue(0x3, 5.0);  // 5 > 2 + 2: supermodular pair
  StatusOr<UtilityConfig> config = std::move(b).Build();
  ASSERT_FALSE(config.ok());
}

TEST(UtilityConfigTest, RejectsNonSubmodularTriple) {
  UtilityConfigBuilder b(3);
  b.SetItemValue(0, 3.0).SetItemValue(1, 3.0).SetItemValue(2, 3.0);
  b.SetBundleValue(0x3, 4.0);
  b.SetBundleValue(0x5, 4.0);
  b.SetBundleValue(0x6, 4.0);
  // marg(2 | {0,1}) = 3 > marg(2 | {0}) = 1: violates submodularity.
  b.SetBundleValue(0x7, 7.0);
  StatusOr<UtilityConfig> config = std::move(b).Build();
  ASSERT_FALSE(config.ok());
}

TEST(UtilityConfigTest, DefaultBundleCompletionIsMaxSingleton) {
  UtilityConfigBuilder b(3);
  b.SetItemValue(0, 1.0).SetItemValue(1, 5.0).SetItemValue(2, 3.0);
  StatusOr<UtilityConfig> config = std::move(b).Build();
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config.value().Value(0x7), 5.0);
  EXPECT_DOUBLE_EQ(config.value().Value(0x5), 3.0);
}

TEST(UtilityConfigTest, ExpectedTruncatedUtilityZeroNoise) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 7.0, 3.0, 4.0);
  EXPECT_DOUBLE_EQ(c.ExpectedTruncatedUtility(0), 1.0);
  EXPECT_NEAR(c.ExpectedTruncatedUtility(1), 0.9, 1e-12);
  EXPECT_DOUBLE_EQ(c.UMin(), 0.9);
}

TEST(UtilityConfigTest, ExpectedTruncatedUtilityNormalNoise) {
  UtilityConfigBuilder b(1);
  b.SetItemValue(0, 1.0).SetItemPrice(0, 0.0);
  b.SetNoise(0, NoiseDistribution::Normal(1.0));
  const UtilityConfig c = std::move(b).Build().value();
  // E[max(0, 1 + Z)] = Phi(1) + phi(1) ~= 1.08332.
  EXPECT_NEAR(c.ExpectedTruncatedUtility(0), 1.08332, 1e-4);
}

TEST(UtilityConfigTest, UMaxDeterministicIsBestBundle) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 8.7, 3.0, 4.0);  // C3-like
  EXPECT_NEAR(c.UMax(), 1.7, 1e-12);
}

TEST(UtilityConfigTest, UMaxWithNoiseAtLeastDeterministicMax) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::Normal(1.0));
  const UtilityConfig c = std::move(b).Build().value();
  // E[max_I U+(I)] >= max(0, E[max single]) and noise adds mass; C1's
  // umax is around 1.5-1.7.
  const double umax = c.UMax(7, 40000);
  EXPECT_GT(umax, 1.0);
  EXPECT_LT(umax, 3.0);
}

TEST(UtilityConfigTest, SuperiorItemNeedsBoundedNoise) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::Normal(1.0));
  const UtilityConfig c = std::move(b).Build().value();
  EXPECT_FALSE(c.SuperiorItem().has_value());
}

TEST(UtilityConfigTest, SuperiorItemDetectedWithClampedNoise) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::ClampedNormal(0.01, 0.04));
  const UtilityConfig c = std::move(b).Build().value();
  // U(i)=1 +- 0.04 vs U(j)=0.9 +- 0.04: item 0 is superior.
  ASSERT_TRUE(c.SuperiorItem().has_value());
  EXPECT_EQ(*c.SuperiorItem(), 0);
}

TEST(UtilityConfigTest, NoSuperiorItemWhenGapTooSmall) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::ClampedNormal(0.1, 0.2));  // overlap
  const UtilityConfig c = std::move(b).Build().value();
  EXPECT_FALSE(c.SuperiorItem().has_value());
}

TEST(UtilityConfigTest, PureCompetitionDetection) {
  // C1-like: bundle utility negative -> pure.
  EXPECT_TRUE(TwoItems(4.0, 4.9, 4.9, 3.0, 4.0).IsPureCompetition());
  // C3-like: bundle utility 1.7 > max single -> soft.
  EXPECT_FALSE(TwoItems(4.0, 4.9, 8.7, 3.0, 4.0).IsPureCompetition());
}

TEST(UtilityConfigTest, PureCompetitionRequiresBoundedNoise) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::Normal(1.0));
  const UtilityConfig c = std::move(b).Build().value();
  // Normal noise can always make adding an item look good.
  EXPECT_FALSE(c.IsPureCompetition());
}

TEST(UtilityConfigTest, ItemsByTruncatedUtilityDesc) {
  UtilityConfigBuilder b(3);
  b.SetItemValue(0, 1.0).SetItemValue(1, 3.0).SetItemValue(2, 2.0);
  const UtilityConfig c = std::move(b).Build().value();
  EXPECT_EQ(c.ItemsByTruncatedUtilityDesc(), (std::vector<ItemId>{1, 2, 0}));
}

TEST(WorldUtilityTableTest, UtilitiesIncludeNoise) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 7.0, 3.0, 4.0);
  const WorldUtilityTable table(c, {0.5, -0.2});
  EXPECT_DOUBLE_EQ(table.Utility(0x1), 1.5);
  EXPECT_NEAR(table.Utility(0x2), 0.7, 1e-12);
  EXPECT_NEAR(table.Utility(0x3), 0.3, 1e-12);  // 0 + 0.5 - 0.2
}

TEST(WorldUtilityTableTest, BestAdoptionPicksMaxUtility) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 7.0, 3.0, 4.0);
  const WorldUtilityTable table(c, {0.0, 0.0});
  EXPECT_EQ(table.BestAdoption(/*desired=*/0x3, /*adopted=*/0), 0x1);
}

TEST(WorldUtilityTableTest, BestAdoptionRespectsProgressiveConstraint) {
  const UtilityConfig c = TwoItems(4.0, 4.9, 7.0, 3.0, 4.0);
  const WorldUtilityTable table(c, {0.0, 0.0});
  // Having adopted item 1 (utility 0.9), the node cannot drop it; adding
  // item 0 gives the bundle utility 0 < 0.9, so it stays at {1}.
  EXPECT_EQ(table.BestAdoption(0x3, 0x2), 0x2);
}

TEST(WorldUtilityTableTest, BestAdoptionRejectsNegative) {
  const UtilityConfig c = TwoItems(2.0, 2.0, 2.0, 3.0, 3.0);  // all U < 0
  const WorldUtilityTable table(c, {0.0, 0.0});
  EXPECT_EQ(table.BestAdoption(0x3, 0), kEmptyItemSet);
}

TEST(WorldUtilityTableTest, BestAdoptionTiePrefersFewerItems) {
  // Bundle ties the best singleton: prefer the singleton.
  const UtilityConfig c = TwoItems(4.0, 3.0, 5.0, 1.0, 2.0);
  // U({0}) = 3, U({1}) = 1, U({0,1}) = 5 - 3 = 2 < 3: stays {0}.
  const WorldUtilityTable table(c, {0.0, 0.0});
  EXPECT_EQ(table.BestAdoption(0x3, 0), 0x1);
}

TEST(WorldUtilityTableTest, BestAdoptionGrowsWhenBeneficial) {
  // Soft competition: bundle strictly better than either item.
  const UtilityConfig c = TwoItems(4.0, 4.9, 8.7, 3.0, 4.0);
  const WorldUtilityTable table(c, {0.0, 0.0});
  EXPECT_EQ(table.BestAdoption(0x3, 0x1), 0x3);
  EXPECT_EQ(table.BestAdoption(0x3, 0), 0x3);
}

TEST(WorldUtilityTableTest, SamplingConstructorMatchesManualNoise) {
  UtilityConfigBuilder b(2);
  b.SetItemValue(0, 4.0).SetItemValue(1, 4.9);
  b.SetItemPrice(0, 3.0).SetItemPrice(1, 4.0);
  b.SetBundleValue(0x3, 4.9);
  b.SetAllNoise(NoiseDistribution::Normal(1.0));
  const UtilityConfig c = std::move(b).Build().value();
  Rng rng1(99), rng2(99);
  const WorldUtilityTable sampled(c, rng1);
  const double n0 = c.Noise(0).Sample(rng2);
  const double n1 = c.Noise(1).Sample(rng2);
  const WorldUtilityTable manual(c, {n0, n1});
  for (ItemSet s = 0; s < 4; ++s) {
    EXPECT_DOUBLE_EQ(sampled.Utility(s), manual.Utility(s));
  }
}

TEST(AllocationTest, AddAndDeduplicate) {
  Allocation a(2);
  a.Add(5, 0);
  a.Add(5, 0);
  a.Add(7, 0);
  a.Add(5, 1);
  EXPECT_EQ(a.SeedsOf(0).size(), 2u);
  EXPECT_EQ(a.SeedsOf(1).size(), 1u);
  EXPECT_EQ(a.TotalPairs(), 3u);
}

TEST(AllocationTest, SeedNodesSortedUnique) {
  Allocation a(2);
  a.Add(9, 0);
  a.Add(3, 1);
  a.Add(9, 1);
  EXPECT_EQ(a.SeedNodes(), (std::vector<NodeId>{3, 9}));
}

TEST(AllocationTest, SeededItemsets) {
  Allocation a(3);
  a.Add(4, 0);
  a.Add(4, 2);
  a.Add(6, 1);
  const auto seeded = a.SeededItemsets();
  ASSERT_EQ(seeded.size(), 2u);
  EXPECT_EQ(seeded[0].first, 4u);
  EXPECT_EQ(seeded[0].second, 0b101);
  EXPECT_EQ(seeded[1].first, 6u);
  EXPECT_EQ(seeded[1].second, 0b010);
}

TEST(AllocationTest, UnionMergesAndDedups) {
  Allocation a(2), b(2);
  a.Add(1, 0);
  b.Add(1, 0);
  b.Add(2, 1);
  const Allocation u = Allocation::Union(a, b);
  EXPECT_EQ(u.SeedsOf(0).size(), 1u);
  EXPECT_EQ(u.SeedsOf(1).size(), 1u);
}

TEST(AllocationTest, RespectsBudgets) {
  Allocation a(2);
  a.Add(1, 0);
  a.Add(2, 0);
  a.Add(3, 1);
  EXPECT_TRUE(a.RespectsBudgets({2, 1}));
  EXPECT_FALSE(a.RespectsBudgets({1, 1}));
}

TEST(AllocationTest, EmptyAndToString) {
  Allocation a(2);
  EXPECT_TRUE(a.Empty());
  a.Add(3, 1);
  EXPECT_FALSE(a.Empty());
  EXPECT_EQ(a.ToString(), "{i0: [], i1: [3]}");
}

}  // namespace
}  // namespace cwm
