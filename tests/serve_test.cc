// Tests for the cwm_serve subsystem: the hand-rolled JSON layer, the
// ServeConfig / wire-protocol parsers, the bounded admission queue, and
// the live server end-to-end over a loopback socket — protocol round
// trips, concurrent clients bit-identical to direct engine execution,
// queue-full `overloaded` rejection, deadline → `deadline_exceeded`,
// malformed-request errors, and graceful shutdown draining in-flight
// requests.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "serve/config.h"
#include "serve/json.h"
#include "support/check.h"
#include "serve/protocol.h"
#include "serve/queue.h"
#include "serve/server.h"
#include "support/failpoint.h"

namespace cwm {
namespace {

// ---------------------------------------------------------------------------
// JSON layer.
// ---------------------------------------------------------------------------

TEST(ServeJsonTest, ParsesScalarsAndNesting) {
  const StatusOr<JsonValue> parsed = ParseJson(
      R"({"s": "a\"b\nA", "n": -2.5, "i": 7, "b": true,
          "z": null, "a": [1, [2]], "o": {"k": "v"}})");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& root = parsed.value();
  ASSERT_TRUE(root.IsObject());
  EXPECT_EQ(root.Find("s")->string, "a\"b\nA");
  EXPECT_EQ(root.Find("n")->number, -2.5);
  EXPECT_EQ(root.Find("i")->number, 7.0);
  EXPECT_TRUE(root.Find("b")->bool_value);
  EXPECT_TRUE(root.Find("z")->IsNull());
  ASSERT_EQ(root.Find("a")->array.size(), 2u);
  EXPECT_EQ(root.Find("a")->array[1].array[0].number, 2.0);
  EXPECT_EQ(root.Find("o")->Find("k")->string, "v");
  EXPECT_EQ(root.Find("missing"), nullptr);
}

TEST(ServeJsonTest, RejectsMalformedDocuments) {
  EXPECT_FALSE(ParseJson("").ok());
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("{\"a\": }").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("nul").ok());
  EXPECT_FALSE(ParseJson("01").ok());
}

TEST(ServeJsonTest, RejectsPathologicalNesting) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(ServeJsonTest, WriterEscapesAndRoundTrips) {
  std::string out;
  AppendJsonString(&out, "a\"b\\c\nd\x01");
  EXPECT_EQ(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
  const StatusOr<JsonValue> back = ParseJson(out);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().string, "a\"b\\c\nd\x01");

  out.clear();
  AppendJsonNumber(&out, 2.0);
  EXPECT_EQ(out, "2");  // whole doubles print as integers
}

// ---------------------------------------------------------------------------
// Config + protocol parsers.
// ---------------------------------------------------------------------------

TEST(ServeConfigTest, ParsesFullDocument) {
  const StatusOr<ServeConfig> config = ParseServeConfig(
      R"({"port": 7077, "workers": 4, "queue_capacity": 16,
          "snapshot_budget_mb": 32, "cache_dir": "",
          "graphs": [{"name": "tiny", "scenario": "smoke-tiny",
                      "network": 0, "config": 0, "scale": 1.0}]})");
  ASSERT_TRUE(config.ok()) << config.status().ToString();
  EXPECT_EQ(config.value().port, 7077);
  EXPECT_EQ(config.value().workers, 4u);
  EXPECT_EQ(config.value().queue_capacity, 16u);
  EXPECT_EQ(config.value().snapshot_budget_bytes, 32ull << 20);
  ASSERT_EQ(config.value().graphs.size(), 1u);
  EXPECT_EQ(config.value().graphs[0].name, "tiny");
  EXPECT_EQ(config.value().graphs[0].scenario, "smoke-tiny");
}

TEST(ServeConfigTest, RejectsUnknownAndInvalid) {
  // Typos fail loudly instead of silently taking defaults.
  EXPECT_FALSE(ParseServeConfig(R"({"prot": 1, "graphs": []})").ok());
  EXPECT_FALSE(ParseServeConfig(R"({"graphs": []})").ok());  // no graphs
  EXPECT_FALSE(ParseServeConfig(
                   R"({"graphs": [{"name": "a", "scenario": "s"},
                                  {"name": "a", "scenario": "s"}]})")
                   .ok());  // duplicate names
  EXPECT_FALSE(ParseServeConfig(
                   R"({"queue_capacity": 0,
                       "graphs": [{"name": "a", "scenario": "s"}]})")
                   .ok());
}

TEST(ServeProtocolTest, ParsesFullRequest) {
  const StatusOr<ServeRequest> request = ParseServeRequest(
      R"({"id": "r1", "graph": "tiny", "algo": "SeqGRD",
          "budgets": [3, 4], "items": [0, 1], "seed": 9,
          "deadline_ms": 250, "sims": 32, "eval_sims": 48,
          "epsilon": 0.4, "ell": 1.5, "evaluate": false})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().id, "r1");
  EXPECT_EQ(request.value().graph, "tiny");
  EXPECT_EQ(request.value().algo, AlgoKind::kSeqGrd);
  ASSERT_EQ(request.value().budget_points.size(), 1u);
  EXPECT_EQ(request.value().budget_points[0], (std::vector<int>{3, 4}));
  EXPECT_EQ(request.value().seed, 9u);
  EXPECT_EQ(request.value().deadline_ms, 250);
  EXPECT_FALSE(request.value().evaluate);
}

TEST(ServeProtocolTest, ParsesBatchBudgets) {
  const StatusOr<ServeRequest> request = ParseServeRequest(
      R"({"graph": "g", "algo": "MaxGRD", "budgets": [[3,3],[5,5]]})");
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  ASSERT_EQ(request.value().budget_points.size(), 2u);
  EXPECT_EQ(request.value().budget_points[1], (std::vector<int>{5, 5}));
}

TEST(ServeProtocolTest, RejectsBadRequests) {
  EXPECT_FALSE(ParseServeRequest("not json").ok());
  EXPECT_FALSE(ParseServeRequest(R"({"algo": "SeqGRD", "budgets": [1]})")
                   .ok());  // missing graph
  EXPECT_FALSE(ParseServeRequest(R"({"graph": "g", "budgets": [1]})")
                   .ok());  // missing algo
  EXPECT_FALSE(ParseServeRequest(R"({"graph": "g", "algo": "SeqGRD"})")
                   .ok());  // missing budgets
  // A typo'd field must not silently drop the deadline.
  const StatusOr<ServeRequest> typo = ParseServeRequest(
      R"({"graph": "g", "algo": "SeqGRD", "budgets": [1],
          "dedaline_ms": 5})");
  EXPECT_FALSE(typo.ok());
  const StatusOr<ServeRequest> unknown_algo = ParseServeRequest(
      R"({"graph": "g", "algo": "NoSuchAlgo", "budgets": [1]})");
  ASSERT_FALSE(unknown_algo.ok());
  EXPECT_EQ(unknown_algo.status().code(), Status::Code::kNotFound);
}

TEST(ServeProtocolTest, ResolvesBudgetPoints) {
  ServeRequest request;
  request.budget_points = {{4}, {2, 3}};
  const StatusOr<std::vector<BudgetVector>> points =
      ResolveServeBudgets(request, 2);
  ASSERT_TRUE(points.ok()) << points.status().ToString();
  EXPECT_EQ(points.value()[0], (BudgetVector{4, 4}));  // broadcast
  EXPECT_EQ(points.value()[1], (BudgetVector{2, 3}));

  request.budget_points = {{1, 2, 3}};
  EXPECT_FALSE(ResolveServeBudgets(request, 2).ok());  // size mismatch
  request.budget_points = {{0}};
  EXPECT_FALSE(ResolveServeBudgets(request, 2).ok());  // budget < 1
}

TEST(ServeProtocolTest, ErrorCodeMapping) {
  EXPECT_EQ(ServeErrorCodeOf(Status::InvalidArgument("x"), false),
            ServeErrorCode::kInvalidArgument);
  EXPECT_EQ(ServeErrorCodeOf(Status::NotFound("x"), false),
            ServeErrorCode::kNotFound);
  EXPECT_EQ(ServeErrorCodeOf(Status::Cancelled("x"), false),
            ServeErrorCode::kCancelled);
  EXPECT_EQ(ServeErrorCodeOf(Status::Cancelled("x"), true),
            ServeErrorCode::kDeadlineExceeded);
  EXPECT_EQ(ServeErrorCodeOf(Status::IOError("x"), false),
            ServeErrorCode::kInternal);
  EXPECT_EQ(std::string(ServeErrorCodeName(ServeErrorCode::kOverloaded)),
            "overloaded");
}

// ---------------------------------------------------------------------------
// BoundedQueue.
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, CapacityAndCloseSemantics) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1));
  EXPECT_TRUE(queue.TryPush(2));
  EXPECT_FALSE(queue.TryPush(3));  // full, never blocks
  EXPECT_EQ(queue.depth(), 2u);
  queue.Close();
  EXPECT_TRUE(queue.closed());
  EXPECT_FALSE(queue.TryPush(4));
  // Items accepted before Close still drain.
  EXPECT_EQ(queue.PopBlocking(), std::optional<int>(1));
  EXPECT_EQ(queue.PopBlocking(), std::optional<int>(2));
  EXPECT_EQ(queue.PopBlocking(), std::nullopt);
}

// ---------------------------------------------------------------------------
// End-to-end server tests over a loopback socket.
// ---------------------------------------------------------------------------

ServeConfig TestServeConfig() {
  ServeConfig config;
  config.port = 0;  // ephemeral; tests read Server::port()
  config.workers = 2;
  config.queue_capacity = 8;
  ServeGraphSpec graph;
  graph.name = "tiny";
  graph.scenario = "smoke-tiny";
  config.graphs = {graph};
  return config;
}

/// Blocking line-oriented loopback client.
class Client {
 public:
  explicit Client(int port) {
    fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    CWM_CHECK(fd_ >= 0);
    timeval timeout{.tv_sec = 120, .tv_usec = 0};
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    CWM_CHECK(::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                        sizeof addr) == 0);
  }
  ~Client() { ::close(fd_); }

  void Send(const std::string& line) {
    const std::string framed = line + "\n";
    std::size_t sent = 0;
    while (sent < framed.size()) {
      const ssize_t n = ::send(fd_, framed.data() + sent,
                               framed.size() - sent, MSG_NOSIGNAL);
      ASSERT_GT(n, 0);
      sent += static_cast<std::size_t>(n);
    }
  }

  std::string ReadLine() {
    std::size_t pos;
    while ((pos = buffer_.find('\n')) == std::string::npos) {
      char chunk[4096];
      const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
      if (n <= 0) return "";  // timeout / closed: caller's EXPECTs fail
      buffer_.append(chunk, static_cast<std::size_t>(n));
    }
    std::string line = buffer_.substr(0, pos);
    buffer_.erase(0, pos + 1);
    return line;
  }

 private:
  int fd_;
  std::string buffer_;
};

/// Canonical serialization of a response with the timing fields removed
/// — everything that must be bit-identical across serving paths.
std::string Canonical(const JsonValue& value) {
  switch (value.kind) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return value.bool_value ? "true" : "false";
    case JsonValue::Kind::kNumber: {
      std::string out;
      AppendJsonNumber(&out, value.number);
      return out;
    }
    case JsonValue::Kind::kString: {
      std::string out;
      AppendJsonString(&out, value.string);
      return out;
    }
    case JsonValue::Kind::kArray: {
      std::string out = "[";
      for (std::size_t i = 0; i < value.array.size(); ++i) {
        if (i > 0) out += ',';
        out += Canonical(value.array[i]);
      }
      return out + "]";
    }
    case JsonValue::Kind::kObject: {
      std::string out = "{";
      bool first = true;
      for (const auto& [key, member] : value.object) {
        if (key.size() > 8 &&
            key.compare(key.size() - 8, 8, "_seconds") == 0) {
          continue;  // wall-clock noise, not payload
        }
        // "degraded" flags a storage fallback that is bit-identical by
        // contract — a degraded response must still match a healthy one.
        if (key == "degraded") continue;
        if (!first) out += ',';
        first = false;
        AppendJsonString(&out, key);
        out += ':';
        out += Canonical(member);
      }
      return out + "}";
    }
  }
  return "";
}

std::string CanonicalResponse(const std::string& line) {
  const StatusOr<JsonValue> parsed = ParseJson(line);
  EXPECT_TRUE(parsed.ok()) << line;
  return parsed.ok() ? Canonical(parsed.value()) : "";
}

std::string FieldOf(const std::string& line, const std::string& key) {
  const StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok() || !parsed.value().IsObject()) return "";
  const JsonValue* field = parsed.value().Find(key);
  return field == nullptr ? "" : Canonical(*field);
}

std::string ErrorCodeOf(const std::string& line) {
  const StatusOr<JsonValue> parsed = ParseJson(line);
  if (!parsed.ok()) return "";
  const JsonValue* error = parsed.value().Find("error");
  if (error == nullptr) return "";
  const JsonValue* code = error->Find("code");
  return code == nullptr ? "" : code->string;
}

std::string SmallRequest(const std::string& id, const std::string& algo,
                         uint64_t seed) {
  return "{\"id\": \"" + id + "\", \"graph\": \"tiny\", \"algo\": \"" +
         algo + "\", \"budgets\": [3], \"seed\": " + std::to_string(seed) +
         ", \"sims\": 20, \"eval_sims\": 24}";
}

/// Ground truth: the same request executed in-process through the shared
/// ExecuteServeRequest path (what cwm_serve --oneshot prints).
std::string DirectResponse(const ServeEngineSet& engines,
                           const std::string& line) {
  const StatusOr<ServeRequest> request = ParseServeRequest(line);
  EXPECT_TRUE(request.ok()) << line;
  return ExecuteServeRequest(engines, request.value(), nullptr);
}

TEST(ServeServerTest, RoundTripMatchesDirectExecution) {
  const ServeConfig config = TestServeConfig();
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  StatusOr<std::unique_ptr<ServeEngineSet>> engines =
      ServeEngineSet::Load(config);
  ASSERT_TRUE(engines.ok()) << engines.status().ToString();

  Client client(server.value()->port());
  const std::string request = SmallRequest("r1", "SeqGRD-NM", 7);
  client.Send(request);
  const std::string served = client.ReadLine();
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(FieldOf(served, "ok"), "true") << served;
  EXPECT_EQ(FieldOf(served, "id"), "\"r1\"");
  // Bit-identical payload (allocation, welfare, budgets) to a direct
  // in-process engine call deriving seeds the same way.
  EXPECT_EQ(CanonicalResponse(served),
            CanonicalResponse(DirectResponse(*engines.value(), request)));
  server.value()->Shutdown();
}

TEST(ServeServerTest, BatchRequestReturnsOneResultPerPoint) {
  const ServeConfig config = TestServeConfig();
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Client client(server.value()->port());
  // NB: requests are line-delimited — they must not contain newlines.
  client.Send("{\"id\": \"b\", \"graph\": \"tiny\", \"algo\": \"SeqGRD\", "
              "\"budgets\": [[2,2],[4,4]], \"sims\": 20, \"eval_sims\": 24}");
  const std::string served = client.ReadLine();
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(FieldOf(served, "ok"), "true") << served;
  const StatusOr<JsonValue> parsed = ParseJson(served);
  ASSERT_TRUE(parsed.ok());
  const JsonValue* results = parsed.value().Find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->array.size(), 2u);
  EXPECT_EQ(Canonical(*results->array[0].Find("budgets")), "[2,2]");
  EXPECT_EQ(Canonical(*results->array[1].Find("budgets")), "[4,4]");
  server.value()->Shutdown();
}

TEST(ServeServerTest, ConcurrentClientsAreBitIdenticalToDirectCalls) {
  const ServeConfig config = TestServeConfig();
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  StatusOr<std::unique_ptr<ServeEngineSet>> engines =
      ServeEngineSet::Load(config);
  ASSERT_TRUE(engines.ok()) << engines.status().ToString();

  constexpr int kClients = 3;
  constexpr int kPerClient = 2;
  std::vector<std::vector<std::pair<std::string, std::string>>> outcomes(
      kClients);  // (request, served response)
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([t, port = server.value()->port(), &outcomes] {
      Client client(port);
      for (int r = 0; r < kPerClient; ++r) {
        const std::string algo = (t + r) % 2 == 0 ? "SeqGRD-NM" : "MaxGRD";
        const std::string request = SmallRequest(
            "c" + std::to_string(t) + "-" + std::to_string(r), algo,
            100 + static_cast<uint64_t>(t * 10 + r));
        client.Send(request);
        outcomes[t].emplace_back(request, client.ReadLine());
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  server.value()->Shutdown();

  for (int t = 0; t < kClients; ++t) {
    for (const auto& [request, served] : outcomes[t]) {
      ASSERT_FALSE(served.empty());
      EXPECT_EQ(FieldOf(served, "ok"), "true") << served;
      EXPECT_EQ(CanonicalResponse(served),
                CanonicalResponse(DirectResponse(*engines.value(), request)))
          << request;
    }
  }
}

TEST(ServeServerTest, MalformedAndUnknownRequestsGetStructuredErrors) {
  StatusOr<std::unique_ptr<Server>> server =
      Server::Start(TestServeConfig());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client(server.value()->port());

  client.Send("this is not json");
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), "invalid_argument");

  client.Send("{\"graph\": \"tiny\", \"algo\": \"SeqGRD\", "
              "\"budgets\": [3], \"dedaline_ms\": 5}");
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), "invalid_argument");

  client.Send("{\"id\": \"x\", \"graph\": \"nope\", \"algo\": \"SeqGRD\", "
              "\"budgets\": [3]}");
  const std::string unknown_graph = client.ReadLine();
  EXPECT_EQ(ErrorCodeOf(unknown_graph), "not_found");
  EXPECT_EQ(FieldOf(unknown_graph, "id"), "\"x\"");

  client.Send(R"({"graph": "tiny", "algo": "NoSuchAlgo", "budgets": [3]})");
  EXPECT_EQ(ErrorCodeOf(client.ReadLine()), "not_found");

  // The connection survives all of the above: a good request still works.
  client.Send(SmallRequest("after", "SeqGRD-NM", 3));
  EXPECT_EQ(FieldOf(client.ReadLine(), "ok"), "true");
  server.value()->Shutdown();
}

// A request heavy enough to outlive the test's control operations (large
// estimator world counts on the 300-node smoke graph).
std::string HeavyRequest(const std::string& id, int64_t deadline_ms) {
  std::string request = "{\"id\": \"" + id +
                        "\", \"graph\": \"tiny\", \"algo\": \"SeqGRD\", "
                        "\"budgets\": [10], \"sims\": 40000, "
                        "\"eval_sims\": 40000";
  if (deadline_ms > 0) {
    request += ", \"deadline_ms\": " + std::to_string(deadline_ms);
  }
  return request + "}";
}

TEST(ServeServerTest, DeadlineCancelsMidRun) {
  StatusOr<std::unique_ptr<Server>> server =
      Server::Start(TestServeConfig());
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client(server.value()->port());

  const auto start = std::chrono::steady_clock::now();
  client.Send(HeavyRequest("d1", 60));
  const std::string served = client.ReadLine();
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    start)
          .count();
  EXPECT_EQ(ErrorCodeOf(served), "deadline_exceeded") << served;
  // Cooperative cancellation latency is bounded by the engine's poll
  // points, far below the full run time (tens of seconds of sampling).
  EXPECT_LT(elapsed, 30.0);
  server.value()->Shutdown();
}

TEST(ServeServerTest, FullQueueRejectsWithOverloaded) {
  ServeConfig config = TestServeConfig();
  config.workers = 1;
  config.queue_capacity = 1;
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  // Occupy the single worker with a deadlined heavy request...
  Client busy(server.value()->port());
  busy.Send(HeavyRequest("busy", 600));
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // ...then burst past the single queue slot.
  Client burst(server.value()->port());
  constexpr int kBurst = 6;
  for (int i = 0; i < kBurst; ++i) {
    burst.Send(SmallRequest("q" + std::to_string(i), "SeqGRD-NM", 1));
  }
  int overloaded = 0;
  for (int i = 0; i < kBurst; ++i) {
    const std::string response = burst.ReadLine();
    ASSERT_FALSE(response.empty());
    if (ErrorCodeOf(response) == "overloaded") ++overloaded;
  }
  // The worker held the heavy request throughout the burst, so at most
  // one burst request fit the queue; the rest were rejected fast.
  EXPECT_GE(overloaded, kBurst - 2);

  EXPECT_EQ(ErrorCodeOf(busy.ReadLine()), "deadline_exceeded");
  server.value()->Shutdown();
}

// Degraded-mode serving: a cache whose RR reads fail mid-request makes
// the worker resample — the response carries "degraded": true but an
// otherwise bit-identical payload; injected transport faults on the
// send path are retried until the response reaches the client.
TEST(ServeServerTest, DegradedResponsesAreFlaggedAndBitIdentical) {
  if (!kFailpointsCompiledIn) GTEST_SKIP() << "failpoints compiled out";
  ServeConfig config = TestServeConfig();
  static const uint64_t token = std::random_device{}();
  const std::filesystem::path cache_dir =
      std::filesystem::path(::testing::TempDir()) /
      ("cwm_serve_degraded_" + std::to_string(token));
  config.cache_dir = cache_dir.string();
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  Client client(server.value()->port());

  // Healthy pass warms the cache; the response must not carry the flag.
  const std::string request = SmallRequest("warm", "SeqGRD-NM", 9);
  client.Send(request);
  const std::string healthy = client.ReadLine();
  ASSERT_FALSE(healthy.empty());
  EXPECT_EQ(FieldOf(healthy, "ok"), "true") << healthy;
  EXPECT_EQ(FieldOf(healthy, "degraded"), "") << healthy;

  // Same payload with every warm RR read failing and one injected send
  // fault: flagged degraded, payload identical, response still delivered.
  FailpointRegistry& failpoints = FailpointRegistry::Global();
  ASSERT_TRUE(failpoints.Set("cache.rr.load", "error(corruption)").ok());
  ASSERT_TRUE(failpoints.Set("serve.send", "1*error").ok());
  client.Send(request);
  const std::string degraded = client.ReadLine();
  failpoints.Clear("cache.rr.load");
  failpoints.Clear("serve.send");
  ASSERT_FALSE(degraded.empty());
  EXPECT_EQ(FieldOf(degraded, "degraded"), "true") << degraded;
  EXPECT_EQ(CanonicalResponse(degraded), CanonicalResponse(healthy));

  server.value()->Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(cache_dir, ec);
}

TEST(ServeServerTest, GracefulShutdownDrainsInFlightRequests) {
  ServeConfig config = TestServeConfig();
  config.workers = 1;
  StatusOr<std::unique_ptr<Server>> server = Server::Start(config);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  Client client(server.value()->port());
  client.Send(SmallRequest("inflight", "SeqGRD-NM", 5));
  // Let the worker pick the request up, then shut down mid-run: the
  // response must still arrive before Shutdown() returns.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.value()->Shutdown();
  const std::string served = client.ReadLine();
  ASSERT_FALSE(served.empty());
  EXPECT_EQ(FieldOf(served, "ok"), "true") << served;
  EXPECT_EQ(FieldOf(served, "id"), "\"inflight\"");
}

}  // namespace
}  // namespace cwm
